//! Confidence intervals on the mean.
//!
//! Figure 14 of the paper reports the mean contact rate of the node at each
//! hop of near-optimal paths with 99% confidence intervals. The sample sizes
//! involved (thousands of hops) make the normal approximation appropriate,
//! so [`ConfidenceInterval`] uses the standard `mean ± z·s/√n` construction
//! with z-scores for the commonly used levels.

use serde::{Deserialize, Serialize};

use crate::{StatsError, Summary};

/// A symmetric confidence interval on a sample mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level in (0, 1), e.g. 0.99.
    pub level: f64,
    /// Number of samples that produced the estimate.
    pub count: u64,
}

/// Returns the two-sided z-score for a given confidence level.
///
/// Exact table values are provided for the levels used in practice; other
/// levels are approximated with the Acklam/Beasley-Springer-Moro style
/// rational approximation of the normal quantile.
fn z_score(level: f64) -> f64 {
    // Common levels, matching standard normal tables.
    const TABLE: &[(f64, f64)] = &[
        (0.80, 1.281551565545),
        (0.90, 1.644853626951),
        (0.95, 1.959963984540),
        (0.98, 2.326347874041),
        (0.99, 2.575829303549),
        (0.995, 2.807033768344),
        (0.999, 3.290526731492),
    ];
    for &(l, z) in TABLE {
        if (level - l).abs() < 1e-12 {
            return z;
        }
    }
    normal_quantile(0.5 + level / 2.0)
}

/// Approximation of the standard normal quantile function (inverse CDF).
///
/// Peter Acklam's rational approximation; absolute error below 1.15e-9 over
/// the open unit interval, far more precision than needed for reporting
/// confidence intervals.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile requires p in (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

impl ConfidenceInterval {
    /// Computes a confidence interval on the mean of `samples` at the given
    /// `level` (e.g. `0.99` for the paper's Fig. 14).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidLevel`] for a level outside (0, 1) and
    /// [`StatsError::EmptyInput`] when fewer than two samples are supplied
    /// (a single sample has no estimable dispersion).
    pub fn from_samples(samples: &[f64], level: f64) -> Result<Self, StatsError> {
        let summary = Summary::from_slice(samples);
        Self::from_summary(&summary, level)
    }

    /// Computes the interval from a pre-aggregated [`Summary`].
    pub fn from_summary(summary: &Summary, level: f64) -> Result<Self, StatsError> {
        if !(level > 0.0 && level < 1.0) {
            return Err(StatsError::InvalidLevel);
        }
        if summary.count() < 2 {
            return Err(StatsError::EmptyInput);
        }
        let mean = summary.mean().expect("count >= 2");
        let se = summary.std_error().expect("count >= 2");
        Ok(Self { mean, half_width: z_score(level) * se, level, count: summary.count() })
    }

    /// Lower bound of the interval.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// True if `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.low() && value <= self.high()
    }

    /// True if this interval and `other` overlap. Non-overlapping 99%
    /// intervals are the paper's informal criterion for calling two hop-rate
    /// means different.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.low() <= other.high() && other.low() <= self.high()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(ConfidenceInterval::from_samples(&[1.0], 0.95).is_err());
        assert!(ConfidenceInterval::from_samples(&[], 0.95).is_err());
        assert!(ConfidenceInterval::from_samples(&[1.0, 2.0], 0.0).is_err());
        assert!(ConfidenceInterval::from_samples(&[1.0, 2.0], 1.0).is_err());
    }

    #[test]
    fn interval_is_centred_on_mean() {
        let ci = ConfidenceInterval::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.95).unwrap();
        assert!((ci.mean - 3.0).abs() < 1e-12);
        assert!((ci.high() - ci.mean - (ci.mean - ci.low())).abs() < 1e-12);
        assert!(ci.contains(3.0));
    }

    #[test]
    fn higher_level_gives_wider_interval() {
        let samples: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let ci90 = ConfidenceInterval::from_samples(&samples, 0.90).unwrap();
        let ci99 = ConfidenceInterval::from_samples(&samples, 0.99).unwrap();
        assert!(ci99.half_width > ci90.half_width);
    }

    #[test]
    fn constant_samples_have_zero_width() {
        let ci = ConfidenceInterval::from_samples(&[5.0; 20], 0.99).unwrap();
        assert_eq!(ci.half_width, 0.0);
        assert!(ci.contains(5.0));
        assert!(!ci.contains(5.1));
    }

    #[test]
    fn overlap_detection() {
        let a = ConfidenceInterval { mean: 0.0, half_width: 1.0, level: 0.95, count: 10 };
        let b = ConfidenceInterval { mean: 1.5, half_width: 1.0, level: 0.95, count: 10 };
        let c = ConfidenceInterval { mean: 5.0, half_width: 1.0, level: 0.95, count: 10 };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn normal_quantile_matches_table() {
        assert!((normal_quantile(0.975) - 1.959963984540).abs() < 1e-6);
        assert!((normal_quantile(0.995) - 2.575829303549).abs() < 1e-6);
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.025) + 1.959963984540).abs() < 1e-6);
    }

    #[test]
    fn z_score_falls_back_to_quantile_for_unusual_levels() {
        let z = z_score(0.93);
        assert!(z > 1.6 && z < 2.0);
    }

    proptest! {
        #[test]
        fn interval_width_shrinks_with_sample_size(base in 1.0f64..100.0) {
            // Same dispersion, more samples => narrower interval.
            let small: Vec<f64> = (0..10).map(|i| base + (i % 5) as f64).collect();
            let large: Vec<f64> = (0..1000).map(|i| base + (i % 5) as f64).collect();
            let ci_small = ConfidenceInterval::from_samples(&small, 0.95).unwrap();
            let ci_large = ConfidenceInterval::from_samples(&large, 0.95).unwrap();
            prop_assert!(ci_large.half_width <= ci_small.half_width + 1e-9);
        }

        #[test]
        fn normal_quantile_is_monotone(p1 in 0.01f64..0.99, p2 in 0.01f64..0.99) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(normal_quantile(lo) <= normal_quantile(hi) + 1e-9);
        }
    }
}
