//! The analyzer run against the live workspace — the same invocation CI
//! gates on (`psn-analyze check --deny-all`), as a plain test so a
//! violation fails `cargo test` even where the CI workflow does not run.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;

use psn_analyze::Workspace;

#[test]
fn live_workspace_has_no_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("workspace root resolves from the analyze crate");
    assert!(
        ws.files.len() > 50,
        "expected the full workspace, scanned only {} files",
        ws.files.len()
    );
    assert!(ws.design_md.is_some(), "DESIGN.md must exist (the failpoint table lives there)");
    let findings = ws.check();
    let rendered: Vec<String> = findings.iter().map(ToString::to_string).collect();
    assert!(findings.is_empty(), "psn-analyze findings on the live workspace:\n{rendered:#?}");
}
