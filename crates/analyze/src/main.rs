//! `psn-analyze` — the workspace invariant checker CLI.
//!
//! ```text
//! psn-analyze check [--deny-all] [--root DIR]   # run all lints
//! psn-analyze list                              # print the lint catalog
//! ```
//!
//! `check` prints one line per finding (`lint: file:line: message`) and a
//! summary. With `--deny-all` any finding makes the process exit 1 — the
//! CI gate. Without it the exit code is always 0, so the command can be
//! used exploratorily while violations are being fixed.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::ExitCode;

use psn_analyze::{LintId, Workspace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        Some("check") => check(&args[1..]),
        Some("--help" | "-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("psn-analyze: unknown subcommand `{other}`");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!("usage: psn-analyze <check [--deny-all] [--root DIR] | list>");
}

/// Prints the lint catalog.
fn list() {
    println!("psn-analyze lint catalog:");
    for lint in LintId::ALL {
        println!("  {:<20} {}", lint.name(), lint.description());
    }
}

/// Runs every lint over the workspace.
fn check(args: &[String]) -> ExitCode {
    let mut deny_all = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("psn-analyze: --root requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("psn-analyze: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("psn-analyze: failed to load workspace at {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let findings = ws.check();
    for finding in &findings {
        println!("{finding}");
    }
    println!(
        "psn-analyze: {} finding(s) across {} file(s), {} line(s) scanned",
        findings.len(),
        ws.files.len(),
        ws.line_count()
    );
    if deny_all && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The workspace root: the current directory when it holds `crates/`,
/// otherwise the workspace this binary was built from.
fn default_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if cwd.join("crates").is_dir() {
        cwd
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    }
}
