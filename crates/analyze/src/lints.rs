//! The five lint families of the workspace invariant checker.
//!
//! Each lint reads the scanned [`Workspace`] and appends [`Finding`]s.
//! Everything operates on the token level over the comment-stripped,
//! string-blanked `code` channel (so `"HashMap"` in a string literal never
//! fires), with `#[cfg(test)]` regions exempt throughout.

use crate::scan::{item_span, Line, SourceFile};
use crate::{Finding, LintId, Workspace};

/// Crates whose output bytes can reach a rendered report or the binary
/// codec — the determinism lint's scope. `bench` (wall-clock output by
/// design) and `fault` (stderr diagnostics only) are out of scope, as is
/// the analyzer itself.
const DETERMINISM_SCOPE: &[&str] =
    &["trace", "stats", "spacetime", "forwarding", "artifact", "analytic", "core"];

/// Crates under the workspace-wide panic-hygiene contract: their `lib.rs`
/// must deny `clippy::unwrap_used`/`clippy::expect_used` and their
/// non-test code must not unwrap, expect, or panic without sanction.
const PANIC_SCOPE: &[&str] = &["trace", "artifact", "fault", "core", "analyze"];

/// True when `line` (or the `window` raw lines above it) carries the
/// `// psn-analyze: <tag>(<reason>)` pragma with a non-empty reason.
fn has_pragma(lines: &[Line], idx: usize, tag: &str, window: usize) -> bool {
    let needle = format!("psn-analyze: {tag}(");
    lines[idx.saturating_sub(window)..=idx].iter().any(|l| match l.raw.find(needle.as_str()) {
        Some(p) => l.raw[p + needle.len()..].chars().next().is_some_and(|c| c != ')'),
        None => false,
    })
}

/// True when `hay` contains `needle` not immediately followed by another
/// identifier character (so `self.workload` never matches
/// `self.workload_seed`).
fn contains_token(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let end = from + pos + needle.len();
        let boundary = hay[end..].chars().next().is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if boundary {
            return true;
        }
        from += pos + 1;
    }
    false
}

/// Line index of the first line whose code contains `marker`, from `from`.
fn find_line(lines: &[Line], marker: &str, from: usize) -> Option<usize> {
    lines.iter().enumerate().skip(from).find(|(_, l)| l.code.contains(marker)).map(|(i, _)| i)
}

/// Field names declared in the struct block at `span`, together with their
/// line index and whether a `cache-excluded` pragma annotates them. The
/// pragma must sit between the previous field and the one it excludes.
fn struct_fields(lines: &[Line], span: (usize, usize)) -> Vec<(String, usize, bool)> {
    let mut fields = Vec::new();
    let mut pending = false;
    for (idx, line) in lines.iter().enumerate().take(span.1 + 1).skip(span.0) {
        if line.raw.contains("psn-analyze: cache-excluded(") {
            pending = true;
        }
        let code = line.code.trim_start();
        if let Some(rest) = code.strip_prefix("pub ") {
            if let Some(colon) = rest.find(':') {
                let name = &rest[..colon];
                if !name.is_empty()
                    && name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
                {
                    fields.push((name.to_string(), idx, pending));
                    pending = false;
                }
            }
        }
    }
    fields
}

/// L1 — cache-key completeness: every `StudyParams` field must be hashed
/// by `hash_into` (or pragma-excluded), every `ScenarioConfig` variant
/// field serialized by `to_doc` (or pragma-excluded). A forgotten field
/// silently serves wrong cached cells.
pub fn cache_key(ws: &Workspace, out: &mut Vec<Finding>) {
    // StudyParams vs hash_into.
    for file in &ws.files {
        let Some(start) = find_line(&file.lines, "pub struct StudyParams", 0) else { continue };
        let Some(span) = item_span(&file.lines, start) else { continue };
        let fields = struct_fields(&file.lines, span);
        let Some(hash_start) = find_line(&file.lines, "fn hash_into", 0) else {
            out.push(Finding::new(
                LintId::CacheKey,
                &file.rel,
                start + 1,
                "StudyParams has no hash_into implementation to check against".to_string(),
            ));
            continue;
        };
        let hash_span = item_span(&file.lines, hash_start).unwrap_or((hash_start, hash_start));
        let body: String = file.lines[hash_span.0..=hash_span.1]
            .iter()
            .map(|l| l.code.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        for (name, idx, excluded) in fields {
            let hashed = contains_token(&body, &format!("self.{name}"));
            if hashed && excluded {
                out.push(Finding::new(
                    LintId::CacheKey,
                    &file.rel,
                    idx + 1,
                    format!(
                        "StudyParams.{name} is marked cache-excluded but hash_into reads it — \
                         drop the pragma or the hash line"
                    ),
                ));
            } else if !hashed && !excluded {
                out.push(Finding::new(
                    LintId::CacheKey,
                    &file.rel,
                    idx + 1,
                    format!(
                        "StudyParams.{name} is not hashed by hash_into and carries no \
                         `psn-analyze: cache-excluded(<reason>)` pragma — an unhashed field \
                         silently serves wrong cached cells"
                    ),
                ));
            }
        }
    }

    // ScenarioConfig variant structs vs to_doc.
    let Some(scenario) =
        ws.files.iter().find(|f| find_line(&f.lines, "pub enum ScenarioConfig", 0).is_some())
    else {
        return;
    };
    let Some(enum_start) = find_line(&scenario.lines, "pub enum ScenarioConfig", 0) else { return };
    let Some(enum_span) = item_span(&scenario.lines, enum_start) else { return };
    let mut variant_structs = Vec::new();
    for line in &scenario.lines[enum_span.0..=enum_span.1] {
        let code = line.code.trim();
        if let Some(open) = code.find('(') {
            if let Some(close) = code.find(')') {
                if open < close {
                    let inner = code[open + 1..close].trim();
                    if inner.ends_with("Config") {
                        variant_structs.push(inner.to_string());
                    }
                }
            }
        }
    }
    let Some(doc_start) = find_line(&scenario.lines, "fn to_doc", 0) else {
        out.push(Finding::new(
            LintId::CacheKey,
            &scenario.rel,
            enum_start + 1,
            "ScenarioConfig has no to_doc implementation to check against".to_string(),
        ));
        return;
    };
    let doc_span = item_span(&scenario.lines, doc_start).unwrap_or((doc_start, doc_start));
    let doc_body: String = scenario.lines[doc_span.0..=doc_span.1]
        .iter()
        .map(|l| l.raw.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    for name in variant_structs {
        let marker = format!("pub struct {name} ");
        for file in &ws.files {
            let Some(start) = find_line(&file.lines, &marker, 0) else { continue };
            let Some(span) = item_span(&file.lines, start) else { continue };
            for (field, idx, excluded) in struct_fields(&file.lines, span) {
                if excluded {
                    continue;
                }
                if !doc_body.contains(&format!("\"{field}\"")) {
                    out.push(Finding::new(
                        LintId::CacheKey,
                        &file.rel,
                        idx + 1,
                        format!(
                            "{name}.{field} is not serialized by ScenarioConfig::to_doc (no \
                             \"{field}\" key) and carries no `psn-analyze: \
                             cache-excluded(<reason>)` pragma — the scenario fingerprint hashes \
                             the doc, so the field would not split cache keys"
                        ),
                    ));
                }
            }
        }
    }
}

/// L2 — determinism: no hash-ordered containers, wall-clock reads, or
/// environment reads in crates whose bytes can reach a report or the
/// codec. Iteration order over a `HashMap` anywhere on a report path
/// breaks the byte-identity contract.
pub fn determinism(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if !DETERMINISM_SCOPE.contains(&file.crate_dir.as_str()) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for container in ["HashMap", "HashSet"] {
                if contains_token(&line.code, container)
                    && !has_pragma(&file.lines, idx, "unordered-ok", 2)
                {
                    out.push(Finding::new(
                        LintId::Determinism,
                        &file.rel,
                        idx + 1,
                        format!(
                            "{container} in a report-reachable crate: iteration order is \
                             nondeterministic — use BTreeMap/BTreeSet or an indexed Vec, or \
                             annotate `psn-analyze: unordered-ok(<reason>)`"
                        ),
                    ));
                }
            }
            for clock in ["SystemTime::now", "Instant::now"] {
                if line.code.contains(clock) && !has_pragma(&file.lines, idx, "wallclock-ok", 2) {
                    out.push(Finding::new(
                        LintId::Determinism,
                        &file.rel,
                        idx + 1,
                        format!(
                            "{clock} in a report-reachable crate: wall-clock values must never \
                             reach rendered output — annotate `psn-analyze: wallclock-ok(<reason>)` \
                             if provably display-only"
                        ),
                    ));
                }
            }
            if (line.code.contains("env::var") || line.code.contains("env::vars"))
                && !file.rel.contains("config")
                && !file.rel.contains("threads")
            {
                out.push(Finding::new(
                    LintId::Determinism,
                    &file.rel,
                    idx + 1,
                    "environment read outside the sanctioned config/threads modules: results \
                     must be a function of the study spec alone"
                        .to_string(),
                ));
            }
        }
    }
}

/// L3 — failpoint registry: every failpoint call site must name a
/// `psn_fault::sites` constant, every registry constant must be used and
/// listed in `sites::ALL`, and the DESIGN.md site table must match the
/// registry exactly.
pub fn failpoint_registry(ws: &Workspace, out: &mut Vec<Finding>) {
    // Parse the registry out of the fault crate.
    let mut consts: Vec<(String, String)> = Vec::new(); // (NAME, "site.string")
    let mut registry_file: Option<&SourceFile> = None;
    for file in &ws.files {
        if file.crate_dir != "fault" {
            continue;
        }
        let Some(start) = find_line(&file.lines, "pub mod sites", 0) else { continue };
        let Some(span) = item_span(&file.lines, start) else { continue };
        registry_file = Some(file);
        for idx in span.0..=span.1 {
            let raw = file.lines[idx].raw.trim();
            let Some(rest) = raw.strip_prefix("pub const ") else { continue };
            let Some((name, value_part)) = rest.split_once(':') else { continue };
            let name = name.trim();
            if name == "ALL" {
                continue;
            }
            let Some(q1) = value_part.find('"') else { continue };
            let Some(q2) = value_part[q1 + 1..].find('"') else { continue };
            consts.push((name.to_string(), value_part[q1 + 1..q1 + 1 + q2].to_string()));
        }
        // Every constant must be listed in sites::ALL.
        if let Some(all_start) = find_line(&file.lines, "pub const ALL", span.0) {
            let all_end =
                (all_start..=span.1).find(|&i| file.lines[i].code.contains("];")).unwrap_or(span.1);
            let all_text: String = file.lines[all_start..=all_end]
                .iter()
                .map(|l| l.code.as_str())
                .collect::<Vec<_>>()
                .join("\n");
            for (name, _) in &consts {
                if !contains_token(&all_text, name) {
                    out.push(Finding::new(
                        LintId::FailpointRegistry,
                        &file.rel,
                        all_start + 1,
                        format!("registry constant {name} is missing from sites::ALL"),
                    ));
                }
            }
        }
    }

    // Cross-check call sites.
    let injectors = ["inject_io(", "inject_io_op(", "inject_decode(", "inject_job("];
    let mut used: Vec<&str> = Vec::new();
    let mut any_call_site = false;
    for file in &ws.files {
        if file.crate_dir == "fault" {
            continue; // the definitions themselves
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for call in injectors {
                let Some(pos) = line.code.find(call) else { continue };
                any_call_site = true;
                // First argument, possibly wrapped onto the next line.
                let mut arg =
                    line.raw[line.raw.find(call).unwrap_or(pos) + call.len()..].trim().to_string();
                if arg.is_empty() {
                    if let Some(next) = file.lines.get(idx + 1) {
                        arg = next.raw.trim().to_string();
                    }
                }
                if arg.starts_with('"') {
                    out.push(Finding::new(
                        LintId::FailpointRegistry,
                        &file.rel,
                        idx + 1,
                        format!(
                            "orphan failpoint site: {call}…) takes a string literal — use a \
                             psn_fault::sites constant so the registry, DESIGN.md and chaos \
                             tests stay in sync"
                        ),
                    ));
                } else if let Some(site_pos) = arg.find("sites::") {
                    let name: String = arg[site_pos + "sites::".len()..]
                        .chars()
                        .take_while(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || *c == '_')
                        .collect();
                    match consts.iter().find(|(n, _)| *n == name) {
                        Some((n, _)) => used.push(n.as_str()),
                        None => out.push(Finding::new(
                            LintId::FailpointRegistry,
                            &file.rel,
                            idx + 1,
                            format!("failpoint site constant sites::{name} is not in the registry"),
                        )),
                    }
                } else {
                    out.push(Finding::new(
                        LintId::FailpointRegistry,
                        &file.rel,
                        idx + 1,
                        format!("failpoint call {call}…) must name a psn_fault::sites constant"),
                    ));
                }
            }
        }
    }

    if let Some(file) = registry_file {
        for (name, _) in &consts {
            if !used.iter().any(|u| u == name) && any_call_site {
                out.push(Finding::new(
                    LintId::FailpointRegistry,
                    &file.rel,
                    1,
                    format!("dead registry entry: sites::{name} has no failpoint call site"),
                ));
            }
        }
    } else if any_call_site {
        out.push(Finding::new(
            LintId::FailpointRegistry,
            "crates/fault/src/lib.rs",
            1,
            "failpoint call sites exist but no `pub mod sites` registry was found".to_string(),
        ));
    }

    // DESIGN.md table must mirror the registry.
    if let (Some(design), false) = (&ws.design_md, consts.is_empty()) {
        let mut table_sites: Vec<&str> = Vec::new();
        let mut in_table = false;
        for line in design.lines() {
            let t = line.trim();
            if t.to_lowercase().contains("failpoint site registry") {
                in_table = true;
                continue;
            }
            if in_table {
                if let Some(cell) = t.strip_prefix("| `") {
                    if let Some(end) = cell.find('`') {
                        table_sites.push(&cell[..end]);
                    }
                } else if !t.starts_with('|') && !t.is_empty() && !table_sites.is_empty() {
                    break;
                }
            }
        }
        if table_sites.is_empty() {
            out.push(Finding::new(
                LintId::FailpointRegistry,
                "DESIGN.md",
                1,
                "no failpoint site registry table found (heading containing \"failpoint site \
                 registry\" followed by a `| `site` | … |` table)"
                    .to_string(),
            ));
        } else {
            for (_, site) in &consts {
                if !table_sites.contains(&site.as_str()) {
                    out.push(Finding::new(
                        LintId::FailpointRegistry,
                        "DESIGN.md",
                        1,
                        format!("registered failpoint site `{site}` is missing from the table"),
                    ));
                }
            }
            for site in table_sites {
                if !consts.iter().any(|(_, s)| s == site) {
                    out.push(Finding::new(
                        LintId::FailpointRegistry,
                        "DESIGN.md",
                        1,
                        format!("documented failpoint site `{site}` is not in psn_fault::sites"),
                    ));
                }
            }
        }
    }
}

/// L4 — panic hygiene: scope crates must declare the clippy deny in their
/// `lib.rs`, and non-test code must not `.unwrap()`/`.expect(…)` or
/// `panic!` without a `# Panics` doc section on the enclosing function or
/// an `allow-panic` pragma.
pub fn panic_hygiene(ws: &Workspace, out: &mut Vec<Finding>) {
    for scope in PANIC_SCOPE {
        let lib = format!("crates/{scope}/src/lib.rs");
        let Some(file) = ws.files.iter().find(|f| f.rel == lib) else { continue };
        if !file.lines.iter().any(|l| l.code.contains("deny(clippy::unwrap_used")) {
            out.push(Finding::new(
                LintId::PanicHygiene,
                &file.rel,
                1,
                "crate is under the panic-hygiene contract but its lib.rs does not declare \
                 #![deny(clippy::unwrap_used, clippy::expect_used)]"
                    .to_string(),
            ));
        }
    }
    for file in &ws.files {
        if !PANIC_SCOPE.contains(&file.crate_dir.as_str()) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for (token, hint) in [
                (".unwrap()", "match on the error or use unwrap_or_else(|| unreachable!(…))"),
                (".expect(", "propagate the error or prove the invariant with unreachable!(…)"),
            ] {
                // `.expect('…')` with a char-literal argument is a local
                // parser helper (e.g. the hand-rolled JSON/TOML readers),
                // not `Option::expect` — skip it.
                let hit = match line.code.find(token) {
                    Some(pos) => !line.code[pos + token.len()..].starts_with('\''),
                    None => false,
                };
                if hit && !has_pragma(&file.lines, idx, "allow-panic", 2) {
                    out.push(Finding::new(
                        LintId::PanicHygiene,
                        &file.rel,
                        idx + 1,
                        format!("{token}…) outside #[cfg(test)] — {hint}"),
                    ));
                }
            }
            if line.code.contains("panic!")
                && !has_pragma(&file.lines, idx, "allow-panic", 2)
                && !enclosing_fn_documents_panics(&file.lines, idx)
            {
                out.push(Finding::new(
                    LintId::PanicHygiene,
                    &file.rel,
                    idx + 1,
                    "panic! outside #[cfg(test)] without a `# Panics` doc section on the \
                     enclosing function — document the contract or annotate `psn-analyze: \
                     allow-panic(<reason>)`"
                        .to_string(),
                ));
            }
        }
    }
}

/// Walks up from `idx` to the nearest enclosing `fn` (first `fn` line with
/// strictly smaller indentation) and checks its doc comment for a
/// `# Panics` section.
fn enclosing_fn_documents_panics(lines: &[Line], idx: usize) -> bool {
    let indent_of = |l: &Line| l.code.len() - l.code.trim_start().len();
    let my_indent = indent_of(&lines[idx]);
    let mut fn_line = None;
    for i in (0..idx).rev() {
        let code = lines[i].code.trim_start();
        if lines[i].code.trim().is_empty() {
            continue;
        }
        let is_fn = code.starts_with("fn ")
            || code.starts_with("pub fn ")
            || code.starts_with("pub(crate) fn ")
            || code.starts_with("pub(super) fn ")
            || code.starts_with("async fn ")
            || code.starts_with("pub async fn ")
            || code.starts_with("const fn ")
            || code.starts_with("pub const fn ");
        if is_fn && indent_of(&lines[i]) < my_indent {
            fn_line = Some(i);
            break;
        }
    }
    let Some(fn_line) = fn_line else { return false };
    // Scan the contiguous attribute/doc block above the fn.
    for i in (0..fn_line).rev() {
        let t = lines[i].raw.trim_start();
        if t.starts_with("#[") || t.starts_with("#![") {
            continue;
        }
        if t.starts_with("///") || t.starts_with("//!") || t.starts_with("//") {
            if t.contains("# Panics") {
                return true;
            }
            continue;
        }
        break;
    }
    false
}

/// L5 — atomic-ordering audit: every `Ordering::Relaxed` must carry a
/// `relaxed:` justification comment on the same line or within the three
/// lines above it.
pub fn relaxed_ordering(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        if file.crate_dir.is_empty() {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test || !line.code.contains("Ordering::Relaxed") {
                continue;
            }
            let justified =
                file.lines[idx.saturating_sub(3)..=idx].iter().any(|l| l.raw.contains("relaxed:"));
            if !justified {
                out.push(Finding::new(
                    LintId::RelaxedOrdering,
                    &file.rel,
                    idx + 1,
                    "Ordering::Relaxed without a `// relaxed: <why this ordering is sufficient>` \
                     justification comment"
                        .to_string(),
                ));
            }
        }
    }
}
