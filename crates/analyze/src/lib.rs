//! # psn-analyze
//!
//! Repo-specific static analysis for the PSN workspace: every guarantee
//! the reproduction rests on — bit-identical reports across engines,
//! threads, cache tiers and injected faults — is otherwise enforced only
//! dynamically, by differential tests that must happen to cover the
//! mutation. This crate checks the underlying *static* invariants at CI
//! time:
//!
//! | lint | invariant |
//! |------|-----------|
//! | `cache-key` (L1) | every `StudyParams`/`ScenarioConfig` field is fingerprinted or pragma-excluded |
//! | `determinism` (L2) | no hash-ordered containers, wall-clock or env reads on report paths |
//! | `failpoint-registry` (L3) | failpoint sites ↔ `psn_fault::sites` ↔ DESIGN.md table, no orphans |
//! | `panic-hygiene` (L4) | no unwrap/expect/panic outside tests without a documented contract |
//! | `relaxed-ordering` (L5) | every `Ordering::Relaxed` carries a justification comment |
//!
//! The scanner is hand-rolled (line-based, comment/string aware, brace
//! matched) because the workspace builds offline without `syn` — the same
//! idiom as the TOML/JSON document model in `psn_trace::scenario`. That
//! is exactly enough for a rustfmt-formatted codebase and keeps the
//! analyzer dependency-free.
//!
//! Run it as `psn-analyze check [--deny-all] [--root DIR]`; CI gates on
//! `--deny-all`. Escape hatches are deliberate and textual so they show
//! up in review: `// psn-analyze: cache-excluded(<reason>)`,
//! `unordered-ok(…)`, `wallclock-ok(…)`, `allow-panic(…)` and
//! `// relaxed: <reason>`.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

mod lints;
pub mod scan;

pub use scan::{Line, SourceFile};

/// The lint families, in catalog order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintId {
    /// L1 — cache-key completeness.
    CacheKey,
    /// L2 — determinism on report paths.
    Determinism,
    /// L3 — failpoint site registry.
    FailpointRegistry,
    /// L4 — panic hygiene.
    PanicHygiene,
    /// L5 — atomic-ordering audit.
    RelaxedOrdering,
}

impl LintId {
    /// Every lint, in catalog order.
    pub const ALL: [LintId; 5] = [
        LintId::CacheKey,
        LintId::Determinism,
        LintId::FailpointRegistry,
        LintId::PanicHygiene,
        LintId::RelaxedOrdering,
    ];

    /// The lint's short name (stable; used in output and docs).
    pub fn name(self) -> &'static str {
        match self {
            LintId::CacheKey => "cache-key",
            LintId::Determinism => "determinism",
            LintId::FailpointRegistry => "failpoint-registry",
            LintId::PanicHygiene => "panic-hygiene",
            LintId::RelaxedOrdering => "relaxed-ordering",
        }
    }

    /// One-line description of the invariant the lint guards.
    pub fn description(self) -> &'static str {
        match self {
            LintId::CacheKey => {
                "every StudyParams / ScenarioConfig field is fingerprinted, or carries \
                 `psn-analyze: cache-excluded(<reason>)` — forgotten fields serve wrong cached cells"
            }
            LintId::Determinism => {
                "no HashMap/HashSet, wall-clock or env reads in report-reachable crates — \
                 iteration order must never reach output bytes \
                 (escapes: unordered-ok, wallclock-ok)"
            }
            LintId::FailpointRegistry => {
                "failpoint call sites use psn_fault::sites constants; registry, sites::ALL and \
                 the DESIGN.md table stay in sync — no orphan sites, no dead entries"
            }
            LintId::PanicHygiene => {
                "no unwrap/expect/panic outside #[cfg(test)] in contract crates; panic! needs a \
                 `# Panics` doc or `psn-analyze: allow-panic(<reason>)`; lib.rs declares the \
                 clippy deny"
            }
            LintId::RelaxedOrdering => {
                "every Ordering::Relaxed carries a `// relaxed: <reason>` justification comment"
            }
        }
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub lint: LintId,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation and its fix.
    pub message: String,
}

impl Finding {
    pub(crate) fn new(lint: LintId, file: &str, line: usize, message: String) -> Finding {
        Finding { lint, file: file.to_string(), line, message }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}:{}: {}", self.lint, self.file, self.line, self.message)
    }
}

/// A scanned workspace: every `crates/*/src/**/*.rs` file plus DESIGN.md.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// The scanned source files, in path order.
    pub files: Vec<SourceFile>,
    /// DESIGN.md, when present (the failpoint table lives there).
    pub design_md: Option<String>,
}

impl Workspace {
    /// Loads and scans the workspace rooted at `root` (the directory
    /// holding the top-level `Cargo.toml` and `crates/`).
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let crates_dir = root.join("crates");
        if !crates_dir.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} has no crates/ directory — not the workspace root", root.display()),
            ));
        }
        let mut paths: Vec<PathBuf> = Vec::new();
        let mut crate_dirs: Vec<PathBuf> =
            std::fs::read_dir(&crates_dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut paths)?;
            }
        }
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for path in paths {
            let text = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile::scan(rel, &text));
        }
        let design_md = std::fs::read_to_string(root.join("DESIGN.md")).ok();
        Ok(Workspace { files, design_md })
    }

    /// Builds a workspace from in-memory `(relative path, contents)`
    /// sources — the fixture entry point for the analyzer's own tests.
    pub fn from_sources<I, S, T>(sources: I, design_md: Option<String>) -> Workspace
    where
        I: IntoIterator<Item = (S, T)>,
        S: Into<String>,
        T: AsRef<str>,
    {
        let files =
            sources.into_iter().map(|(rel, text)| SourceFile::scan(rel.into(), text.as_ref()));
        Workspace { files: files.collect(), design_md }
    }

    /// Runs every lint family and returns the findings sorted by
    /// (file, line, lint).
    pub fn check(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        lints::cache_key(self, &mut out);
        lints::determinism(self, &mut out);
        lints::failpoint_registry(self, &mut out);
        lints::panic_hygiene(self, &mut out);
        lints::relaxed_ordering(self, &mut out);
        out.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
        out
    }

    /// Total number of scanned lines (for the summary footer).
    pub fn line_count(&self) -> usize {
        self.files.iter().map(|f| f.lines.len()).sum()
    }
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    /// A minimal well-formed fault registry fixture.
    const FAULT_OK: &str = r#"
pub mod sites {
    /// Site one.
    pub const DISK_READ: &str = "disk.read";
    /// Site two.
    pub const QUEUE_RUN: &str = "queue.run";
    /// All sites.
    pub const ALL: &[&str] = &[DISK_READ, QUEUE_RUN];
}
"#;

    const CALLERS_OK: &str = "
fn read() {
    psn_fault::inject_io(psn_fault::sites::DISK_READ, &mut buf)?;
}
fn run() {
    psn_fault::inject_job(psn_fault::sites::QUEUE_RUN);
}
";

    fn only(findings: &[Finding], lint: LintId) -> Vec<&Finding> {
        findings.iter().filter(|f| f.lint == lint).collect()
    }

    #[test]
    fn cache_key_fires_on_unhashed_field_and_passes_when_hashed() {
        let firing = "
pub struct StudyParams {
    /// Hashed.
    pub delta: f64,
    /// Forgotten!
    pub new_knob: u64,
    // psn-analyze: cache-excluded(worker count never changes results)
    pub threads: usize,
}
impl StudyParams {
    fn hash_into(&self, hasher: &mut H) {
        hasher.write_f64(self.delta);
    }
}
";
        let ws = Workspace::from_sources([("crates/core/src/study/mod.rs", firing)], None);
        let f = ws.check();
        let hits = only(&f, LintId::CacheKey);
        assert_eq!(hits.len(), 1, "{f:?}");
        assert!(hits[0].message.contains("new_knob"));
        assert_eq!(hits[0].line, 6);

        let clean = firing.replace("    /// Forgotten!\n    pub new_knob: u64,\n", "");
        let ws = Workspace::from_sources([("crates/core/src/study/mod.rs", clean)], None);
        assert!(only(&ws.check(), LintId::CacheKey).is_empty());
    }

    #[test]
    fn cache_key_rejects_contradictory_pragma() {
        let src = "
pub struct StudyParams {
    // psn-analyze: cache-excluded(but it is hashed anyway)
    pub delta: f64,
}
impl StudyParams {
    fn hash_into(&self, hasher: &mut H) {
        hasher.write_f64(self.delta);
    }
}
";
        let ws = Workspace::from_sources([("crates/core/src/study/mod.rs", src)], None);
        let f = ws.check();
        assert_eq!(only(&f, LintId::CacheKey).len(), 1, "{f:?}");
        assert!(f[0].message.contains("marked cache-excluded but hash_into reads it"));
    }

    #[test]
    fn cache_key_checks_scenario_to_doc_coverage() {
        let scenario = r#"
pub enum ScenarioConfig {
    /// The homogeneous family.
    Homogeneous(HomogeneousConfig),
}
impl ScenarioConfig {
    pub(crate) fn to_doc(&self) -> doc::Table {
        let mut top = doc::Table::new("scenario");
        match self {
            ScenarioConfig::Homogeneous(c) => {
                top.set_u64("nodes", c.nodes as u64);
            }
        }
        top
    }
}
"#;
        let config = "
pub struct HomogeneousConfig {
    /// Serialized.
    pub nodes: usize,
    /// Not serialized!
    pub secret_rate: f64,
}
";
        let ws = Workspace::from_sources(
            [
                ("crates/trace/src/scenario.rs", scenario),
                ("crates/trace/src/generator/config.rs", config),
            ],
            None,
        );
        let f = ws.check();
        let hits = only(&f, LintId::CacheKey);
        assert_eq!(hits.len(), 1, "{f:?}");
        assert!(hits[0].message.contains("HomogeneousConfig.secret_rate"));
    }

    #[test]
    fn determinism_fires_in_scope_and_respects_pragma_and_tests() {
        let src = "
use std::collections::HashMap;
fn build() {
    // psn-analyze: unordered-ok(drained through a sorted Vec before output)
    let ok: HashMap<u32, u32> = HashMap::new();
    let t = std::time::Instant::now();
}
#[cfg(test)]
mod tests {
    fn t() {
        let m: std::collections::HashMap<u32, u32> = Default::default();
    }
}
";
        let ws = Workspace::from_sources([("crates/core/src/lib.rs", src)], None);
        let f = ws.check();
        let hits = only(&f, LintId::Determinism);
        // The import line fires, the pragma'd construction does not, the
        // Instant::now fires, the test use does not.
        assert_eq!(hits.len(), 2, "{f:?}");
        assert_eq!(hits[0].line, 2);
        assert!(hits[1].message.contains("Instant::now"));

        // Out-of-scope crates (bench) are exempt.
        let ws = Workspace::from_sources([("crates/bench/src/lib.rs", src)], None);
        assert!(only(&ws.check(), LintId::Determinism).is_empty());
    }

    #[test]
    fn determinism_flags_env_reads_outside_config() {
        let src = "fn f() { let v = std::env::var(\"X\"); }\n";
        let ws = Workspace::from_sources([("crates/core/src/study/mod.rs", src)], None);
        assert_eq!(only(&ws.check(), LintId::Determinism).len(), 1);
        let ws = Workspace::from_sources([("crates/core/src/config.rs", src)], None);
        assert!(only(&ws.check(), LintId::Determinism).is_empty());
    }

    #[test]
    fn failpoint_registry_passes_when_in_sync() {
        let ws = Workspace::from_sources(
            [
                ("crates/fault/src/lib.rs", FAULT_OK),
                ("crates/artifact/src/disk.rs", CALLERS_OK),
            ],
            Some(
                "### Failpoint site registry\n\n| site | where |\n|---|---|\n| `disk.read` | x |\n| `queue.run` | y |\n"
                    .to_string(),
            ),
        );
        let f = ws.check();
        assert!(only(&f, LintId::FailpointRegistry).is_empty(), "{f:?}");
    }

    #[test]
    fn failpoint_registry_fires_on_orphan_literal_dead_entry_and_doc_drift() {
        let callers = "
fn read() {
    psn_fault::inject_io(\"disk.read\", &mut buf)?;
}
";
        let ws = Workspace::from_sources(
            [("crates/fault/src/lib.rs", FAULT_OK), ("crates/artifact/src/disk.rs", callers)],
            Some(
                "### Failpoint site registry\n\n| `disk.read` | x |\n| `stale.site` | y |\n"
                    .to_string(),
            ),
        );
        let f = ws.check();
        let hits = only(&f, LintId::FailpointRegistry);
        let text: Vec<&str> = hits.iter().map(|h| h.message.as_str()).collect();
        assert!(text.iter().any(|m| m.contains("orphan failpoint site")), "{text:?}");
        assert!(text.iter().any(|m| m.contains("dead registry entry")), "{text:?}");
        assert!(
            text.iter().any(|m| m.contains("`queue.run`") && m.contains("missing")),
            "{text:?}"
        );
        assert!(text.iter().any(|m| m.contains("`stale.site`")), "{text:?}");
    }

    #[test]
    fn failpoint_registry_requires_all_listing() {
        let fault = r#"
pub mod sites {
    pub const DISK_READ: &str = "disk.read";
    pub const FORGOTTEN: &str = "queue.forgotten";
    pub const ALL: &[&str] = &[DISK_READ];
}
"#;
        let callers = "
fn f() {
    psn_fault::inject_io(psn_fault::sites::DISK_READ, &mut b)?;
    psn_fault::inject_job(psn_fault::sites::FORGOTTEN);
}
";
        let ws = Workspace::from_sources(
            [("crates/fault/src/lib.rs", fault), ("crates/core/src/x.rs", callers)],
            None,
        );
        let f = ws.check();
        let hits = only(&f, LintId::FailpointRegistry);
        assert_eq!(hits.len(), 1, "{f:?}");
        assert!(hits[0].message.contains("missing from sites::ALL"));
    }

    #[test]
    fn panic_hygiene_fires_and_honors_panics_doc_and_tests() {
        let src = "
#![deny(clippy::unwrap_used, clippy::expect_used)]

/// Documented contract.
///
/// # Panics
///
/// Panics when the invariant is violated.
pub fn documented(x: Option<u32>) -> u32 {
    match x {
        Some(v) => v,
        None => panic!(\"invariant\"),
    }
}

pub fn bare(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn undocumented() {
    panic!(\"boom\");
}

#[cfg(test)]
mod tests {
    fn t() {
        None::<u32>.unwrap();
        panic!(\"fine in tests\");
    }
}
";
        let ws = Workspace::from_sources([("crates/core/src/lib.rs", src)], None);
        let f = ws.check();
        let hits = only(&f, LintId::PanicHygiene);
        assert_eq!(hits.len(), 2, "{f:?}");
        assert!(hits[0].message.contains(".unwrap()"));
        assert!(hits[1].message.contains("# Panics"));
    }

    #[test]
    fn panic_hygiene_requires_lib_deny() {
        let ws = Workspace::from_sources([("crates/fault/src/lib.rs", "pub fn fine() {}\n")], None);
        let f = ws.check();
        let hits = only(&f, LintId::PanicHygiene);
        assert_eq!(hits.len(), 1, "{f:?}");
        assert!(hits[0].message.contains("deny(clippy::unwrap_used"));
    }

    #[test]
    fn relaxed_ordering_requires_justification() {
        let src = "
fn f(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
    // relaxed: stats counter, orders nothing.
    c.fetch_add(1, Ordering::Relaxed);
}
";
        let ws = Workspace::from_sources([("crates/bench/src/lib.rs", src)], None);
        let f = ws.check();
        let hits = only(&f, LintId::RelaxedOrdering);
        assert_eq!(hits.len(), 1, "{f:?}");
        assert_eq!(hits[0].line, 3);
    }

    #[test]
    fn findings_render_with_location() {
        let f = Finding::new(LintId::Determinism, "crates/x/src/lib.rs", 7, "msg".to_string());
        assert_eq!(f.to_string(), "determinism: crates/x/src/lib.rs:7: msg");
        assert_eq!(LintId::ALL.len(), 5);
        for lint in LintId::ALL {
            assert!(!lint.description().is_empty());
        }
    }
}
