//! A lightweight, hand-rolled Rust source scanner.
//!
//! The analyzer deliberately avoids a real parser (the workspace builds
//! offline against vendored stand-ins, so `syn` is not available) — the
//! same idiom as the hand-rolled TOML/JSON document model in
//! `psn_trace::scenario`. The scanner classifies every line of a source
//! file into *code*, *comment* and *string* channels and tracks
//! `#[cfg(test)]` regions by brace matching, which is exactly enough for
//! token-level lints over a rustfmt-formatted codebase.

/// One scanned source line, split into channels.
#[derive(Debug, Clone)]
pub struct Line {
    /// The original line text.
    pub raw: String,
    /// The line with comments stripped and string/char literal contents
    /// blanked (delimiters kept), so token searches never match inside
    /// either.
    pub code: String,
    /// The comment text carried by the line (line, doc and block comments).
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A scanned source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes
    /// (e.g. `crates/trace/src/rates.rs`).
    pub rel: String,
    /// The crate directory under `crates/` (e.g. `trace`), or empty when
    /// the file lives elsewhere.
    pub crate_dir: String,
    /// The scanned lines, in order.
    pub lines: Vec<Line>,
}

/// Scanner mode carried across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    /// Nested block comment depth.
    Block(u32),
    /// Inside a regular `"…"` string (escapes respected).
    Str,
    /// Inside a raw string terminated by `"` plus this many `#`s.
    RawStr(u32),
}

impl SourceFile {
    /// Scans `text` into classified lines.
    pub fn scan(rel: impl Into<String>, text: &str) -> SourceFile {
        let rel = rel.into();
        let crate_dir = rel
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or_default()
            .to_string();
        let mut lines = Vec::new();
        let mut mode = Mode::Code;
        for raw in text.lines() {
            let (code, comment, next_mode) = scan_line(raw, mode);
            mode = next_mode;
            lines.push(Line { raw: raw.to_string(), code, comment, in_test: false });
        }
        mark_test_regions(&mut lines);
        SourceFile { rel, crate_dir, lines }
    }
}

/// Scans one line starting in `mode`; returns (code, comment, end mode).
#[allow(clippy::too_many_lines)]
fn scan_line(raw: &str, mut mode: Mode) -> (String, String, Mode) {
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let chars: Vec<char> = raw.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match mode {
            Mode::Block(depth) => {
                if c == '*' && next == Some('/') {
                    mode = if depth > 1 { Mode::Block(depth - 1) } else { Mode::Code };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char (possibly the quote)
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let h = hashes as usize;
                    if chars[i + 1..].iter().take(h).filter(|&&x| x == '#').count() == h {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1 + h;
                        continue;
                    }
                }
                i += 1;
            }
            Mode::Code => {
                if c == '/' && next == Some('/') {
                    comment.push_str(&raw[byte_index(raw, i)..]);
                    i = chars.len();
                } else if c == '/' && next == Some('*') {
                    mode = Mode::Block(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && is_raw_string_start(&chars, i) {
                    // r"…", r#"…"#, br"…", b"…" — count the hashes.
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    code.push('"');
                    mode = if hashes == 0 && (c == 'b' && chars.get(i + 1) == Some(&'"')) {
                        Mode::Str // b"…" is an escaped string, not raw
                    } else {
                        Mode::RawStr(hashes)
                    };
                    i = j + 1;
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal closes with a
                    // quote one (possibly escaped) char later.
                    if next == Some('\\') {
                        // '\n', '\'', '\u{…}' — skip to the closing quote.
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                        code.push_str("' '");
                        i = j + 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        code.push_str("' '");
                        i += 3;
                    } else {
                        code.push('\''); // lifetime
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }
    (code, comment, mode)
}

/// True when position `i` (an `r` or `b`) starts a raw/byte string literal
/// rather than an identifier like `radius` or `b0`.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Must not be preceded by an identifier character.
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    if chars[i] == 'b' && chars.get(j) == Some(&'r') {
        j += 1;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Byte index of char position `i` in `s` (lines are short; O(n) is fine).
fn byte_index(s: &str, i: usize) -> usize {
    s.char_indices().nth(i).map_or(s.len(), |(b, _)| b)
}

/// Marks every line inside a `#[cfg(test)]` item span (attribute line
/// through the matching close brace) as test code.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut test_close_depth: Option<i64> = None;
    let mut pending_attr = false;
    for line in lines.iter_mut() {
        if test_close_depth.is_some() || pending_attr {
            line.in_test = true;
        }
        if test_close_depth.is_none() && line.code.contains("#[cfg(test)]") {
            pending_attr = true;
            line.in_test = true;
        }
        let mut saw_brace = false;
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending_attr {
                        test_close_depth = Some(depth);
                        pending_attr = false;
                    }
                    depth += 1;
                    saw_brace = true;
                }
                '}' => {
                    depth -= 1;
                    if test_close_depth == Some(depth) {
                        test_close_depth = None;
                    }
                    saw_brace = true;
                }
                // `#[cfg(test)] use …;` — a braceless item ends the span.
                ';' if pending_attr && !saw_brace => pending_attr = false,
                _ => {}
            }
        }
    }
}

/// Finds the line span `[start, end]` of the item whose opening marker
/// (e.g. `pub struct StudyParams {`, `fn hash_into`) appears at
/// `start`, by matching braces from the first `{` at or after `start`.
/// Returns `None` when no brace block follows.
pub fn item_span(lines: &[Line], start: usize) -> Option<(usize, usize)> {
    let mut depth: i64 = 0;
    let mut opened = false;
    for (idx, line) in lines.iter().enumerate().skip(start) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth == 0 {
                        return Some((start, idx));
                    }
                }
                _ => {}
            }
        }
        if !opened && idx > start + 10 {
            return None; // marker was not followed by a block
        }
    }
    None
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let f = SourceFile::scan(
            "crates/demo/src/lib.rs",
            "let x = \"HashMap\"; // HashMap here\nlet y = 1; /* HashMap */ let z = 2;\n",
        );
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.contains("HashMap"));
        assert!(!f.lines[1].code.contains("HashMap"));
        assert!(f.lines[1].code.contains("let z"));
        assert_eq!(f.crate_dir, "demo");
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let f = SourceFile::scan(
            "x.rs",
            "let s = r#\"HashMap \" inner\"#;\nlet c = '\"'; let l: &'static str = \"ok\";\nlet multi = \"a\nHashMap b\";\n",
        );
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[1].code.contains("&'static str"));
        assert!(!f.lines[3].code.contains("HashMap"), "{:?}", f.lines[3].code);
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::scan("x.rs", src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn item_spans_match_braces() {
        let src = "struct S {\n    a: u32,\n    b: u32,\n}\nfn f() {\n    body();\n}\n";
        let f = SourceFile::scan("x.rs", src);
        assert_eq!(item_span(&f.lines, 0), Some((0, 3)));
        assert_eq!(item_span(&f.lines, 4), Some((4, 6)));
    }
}
