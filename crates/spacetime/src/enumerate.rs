//! k-shortest valid-path enumeration (the paper's Fig. 3 algorithm).
//!
//! For a message `(σ, δ, t₁)` the enumerator walks the space-time graph slot
//! by slot, maintaining for every node the (up to) `k` shortest valid paths
//! from `(σ, t₁)` that currently end at that node ("shortest" = fewest
//! hops, as in the paper). At each slot:
//!
//! * every stored path whose holder can reach the destination through
//!   zero-weight (same-slot) contact edges is **delivered** — appended with
//!   the destination hop and output with the slot's end time; the stored
//!   copy is dropped, because any continuation of it would violate the
//!   first-preference rule (its holder met the destination before the later
//!   delivery time);
//! * every other stored path is **extended** to each member of its holder's
//!   contact component that is not already on the path (loop avoidance) —
//!   one appended hop per reachable node, as in the paper's "extensions to
//!   vertices reachable via paths of zero weight";
//! * paths also implicitly **wait**: a stored path stays available at its
//!   holder for the next slot without gaining a hop;
//! * per node, only the `k` shortest of the retained + newly arrived paths
//!   survive to the next slot.
//!
//! Enumeration stops when at least `k` paths reach the destination within a
//! single slot (the paper's stopping rule), when the configured maximum
//! number of delivered paths has been collected, or when the trace ends.

use psn_trace::{NodeId, Seconds};
use serde::{Deserialize, Serialize};

use crate::graph::SpaceTimeGraph;
use crate::message::Message;
use crate::path::Path;

/// Configuration of a path-enumeration run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnumerationConfig {
    /// `k`: the per-node path budget and the per-slot delivery count that
    /// stops enumeration. The paper uses 2000.
    pub k: usize,
    /// Hard cap on the total number of delivered paths recorded, to bound
    /// memory when a message's destination sits inside a very large contact
    /// component. `None` keeps every delivered path.
    pub max_delivered_paths: Option<usize>,
    /// Cap on the number of delivered paths for which the *full hop
    /// sequence* is retained (delivery times are always recorded). The
    /// per-hop analyses (Figs. 14 and 15) only need a sample of
    /// near-optimal paths.
    pub stored_path_limit: usize,
    /// Whether to enforce the first-preference rule (paper §4.1). Disabling
    /// it is only useful for the validity ablation benchmark, which shows
    /// how the path counts inflate when dominated paths are kept.
    pub enforce_first_preference: bool,
}

impl Default for EnumerationConfig {
    fn default() -> Self {
        Self {
            k: 2000,
            max_delivered_paths: Some(100_000),
            stored_path_limit: 4000,
            enforce_first_preference: true,
        }
    }
}

impl EnumerationConfig {
    /// The paper's configuration (k = 2000).
    pub fn paper() -> Self {
        Self::default()
    }

    /// A reduced configuration for tests and quick experiments.
    pub fn quick(k: usize) -> Self {
        Self {
            k,
            max_delivered_paths: Some(50 * k),
            stored_path_limit: 4 * k,
            enforce_first_preference: true,
        }
    }

    /// The same configuration with the first-preference rule disabled (the
    /// validity ablation).
    pub fn without_first_preference(mut self) -> Self {
        self.enforce_first_preference = false;
        self
    }
}

/// One delivery event: a valid path reached the destination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Delivery {
    /// Absolute delivery time (slot end time), seconds.
    pub time: Seconds,
    /// Number of hops (tuples) of the delivered path, including source and
    /// destination.
    pub hops: usize,
}

/// The result of enumerating paths for one message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnumerationResult {
    /// The message that was enumerated.
    pub message: Message,
    /// Every recorded delivery in non-decreasing time order.
    pub deliveries: Vec<Delivery>,
    /// Full hop sequences for the first `stored_path_limit` delivered paths.
    pub sample_paths: Vec<Path>,
    /// True if enumeration stopped because `k` or more paths arrived in one
    /// slot (the paper's explosion-detection stopping rule).
    pub exploded: bool,
    /// True if the total-delivery cap was hit before the per-slot rule.
    pub truncated: bool,
    /// Number of slots processed.
    pub slots_processed: usize,
}

impl EnumerationResult {
    /// Number of recorded deliveries.
    pub fn delivered_count(&self) -> usize {
        self.deliveries.len()
    }

    /// Delivery time of the first (optimal) path, if any path was found.
    pub fn first_delivery_time(&self) -> Option<Seconds> {
        self.deliveries.first().map(|d| d.time)
    }

    /// Duration of the optimal path (T₁ in the paper): first delivery time
    /// minus message creation time.
    pub fn optimal_duration(&self) -> Option<Seconds> {
        self.first_delivery_time().map(|t| t - self.message.created_at)
    }

    /// Delivery time of the n-th path (1-based), if at least `n` paths were
    /// recorded.
    pub fn nth_delivery_time(&self, n: usize) -> Option<Seconds> {
        if n == 0 {
            return None;
        }
        self.deliveries.get(n - 1).map(|d| d.time)
    }

    /// Hop count of the optimal (first-delivered) path.
    pub fn optimal_hops(&self) -> Option<usize> {
        self.deliveries.first().map(|d| d.hops)
    }
}

/// The per-message k-shortest valid path enumerator.
#[derive(Debug, Clone)]
pub struct PathEnumerator<'a> {
    graph: &'a SpaceTimeGraph,
    config: EnumerationConfig,
}

impl<'a> PathEnumerator<'a> {
    /// Creates an enumerator over a space-time graph.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(graph: &'a SpaceTimeGraph, config: EnumerationConfig) -> Self {
        assert!(config.k > 0, "k must be at least 1");
        Self { graph, config }
    }

    /// The enumeration configuration.
    pub fn config(&self) -> &EnumerationConfig {
        &self.config
    }

    /// Enumerates valid paths for `message`, in delivery-time order.
    pub fn enumerate(&self, message: &Message) -> EnumerationResult {
        let graph = self.graph;
        let k = self.config.k;
        let n = graph.node_count();
        let destination = message.destination;

        // Stored paths per node. The source starts with its trivial path.
        let mut stored: Vec<Vec<Path>> = vec![Vec::new(); n];
        stored[message.source.index()]
            .push(Path::source(message.source, message.created_at));

        let mut deliveries: Vec<Delivery> = Vec::new();
        let mut sample_paths: Vec<Path> = Vec::new();
        let mut exploded = false;
        let mut truncated = false;

        let start_slot = graph.slot_of_time(message.created_at);
        let mut slots_processed = 0;

        'slots: for s in start_slot..graph.slot_count() {
            slots_processed += 1;
            let slot_time = graph.slot_end_time(s);
            let destination_active = graph.has_contacts(s, destination);

            // Nodes able to reach the destination through zero-weight edges
            // this slot. Any path one of whose nodes lies in this set either
            // delivers now (if its current holder is in the set) or becomes
            // invalid under the first-preference rule: that earlier holder
            // keeps a copy forever and would have delivered it now, so any
            // later delivery of this path is dominated.
            let mut near_destination = vec![false; n];
            if destination_active {
                near_destination[destination.index()] = true;
                for m in graph.component_members(s, destination) {
                    near_destination[m.index()] = true;
                }
            }

            // Newly arrived paths per node this slot.
            let mut arrivals: Vec<Vec<Path>> = vec![Vec::new(); n];
            let mut delivered_this_slot: usize = 0;

            for holder_idx in 0..n {
                if stored[holder_idx].is_empty() {
                    continue;
                }
                let holder = NodeId(holder_idx as u32);
                let delivers = destination_active
                    && holder != destination
                    && near_destination[holder_idx];

                if delivers {
                    // Every stored path at this holder is delivered now.
                    // Under the first-preference rule the stored copies are
                    // also removed: continuing them would be dominated by
                    // the delivery that just happened.
                    let paths = if self.config.enforce_first_preference {
                        std::mem::take(&mut stored[holder_idx])
                    } else {
                        stored[holder_idx].clone()
                    };
                    for p in paths {
                        delivered_this_slot += 1;
                        let hops = p.len() + 1;
                        deliveries.push(Delivery { time: slot_time, hops });
                        if sample_paths.len() < self.config.stored_path_limit {
                            sample_paths.push(p.extended(destination, slot_time));
                        }
                        if let Some(cap) = self.config.max_delivered_paths {
                            if deliveries.len() >= cap {
                                truncated = true;
                                break;
                            }
                        }
                    }
                } else {
                    // Drop paths that carry a node which meets the
                    // destination this slot (first preference: that node
                    // still holds a copy and delivers it now, so this longer
                    // continuation can never be a first-preference path).
                    if destination_active && self.config.enforce_first_preference {
                        stored[holder_idx]
                            .retain(|p| !p.nodes().any(|node| near_destination[node.index()]));
                    }
                    if stored[holder_idx].is_empty() || !graph.has_contacts(s, holder) {
                        // Nothing to extend; surviving paths simply wait.
                        continue;
                    }
                    // Extend to every component member not already on the
                    // path. The destination cannot be a member here (it is
                    // either inactive or in another component).
                    let members = graph.component_members(s, holder);
                    for p in &stored[holder_idx] {
                        for &v in &members {
                            if p.contains(v) {
                                continue;
                            }
                            arrivals[v.index()].push(p.extended(v, slot_time));
                        }
                    }
                }

                if truncated {
                    break;
                }
            }

            // Merge arrivals with retained paths and keep the k shortest per
            // node (fewest hops first; earlier arrival wins ties because
            // retained paths sort before arrivals of equal length).
            for idx in 0..n {
                if arrivals[idx].is_empty() {
                    // Nothing new; retained paths (already <= k) stay put.
                    continue;
                }
                let mut merged = std::mem::take(&mut stored[idx]);
                merged.append(&mut arrivals[idx]);
                merged.sort_by_key(|p| p.len());
                merged.truncate(k);
                stored[idx] = merged;
            }

            if truncated {
                break 'slots;
            }
            if delivered_this_slot >= k {
                exploded = true;
                break 'slots;
            }
        }

        deliveries.sort_by(|a, b| {
            a.time.partial_cmp(&b.time).expect("finite").then(a.hops.cmp(&b.hops))
        });

        EnumerationResult {
            message: *message,
            deliveries,
            sample_paths,
            exploded,
            truncated,
            slots_processed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validity::is_valid_path;
    use psn_trace::contact::Contact;
    use psn_trace::node::{NodeClass, NodeRegistry};
    use psn_trace::trace::{ContactTrace, TimeWindow};

    fn nid(v: u32) -> NodeId {
        NodeId(v)
    }

    fn trace_from(contacts: Vec<(u32, u32, f64, f64)>, nodes: usize, end: f64) -> ContactTrace {
        let mut reg = NodeRegistry::new();
        for _ in 0..nodes {
            reg.add(NodeClass::Mobile);
        }
        let cs = contacts
            .into_iter()
            .map(|(a, b, s, e)| Contact::new(nid(a), nid(b), s, e).unwrap())
            .collect();
        ContactTrace::from_contacts("enum-test", reg, TimeWindow::new(0.0, end), cs).unwrap()
    }

    #[test]
    fn two_hop_chain_is_found() {
        // 0 meets 1 in slot 0, 1 meets 2 in slot 2.
        let trace = trace_from(vec![(0, 1, 1.0, 5.0), (1, 2, 21.0, 25.0)], 3, 60.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(10));
        let result = enumerator.enumerate(&Message::new(nid(0), nid(2), 0.0));
        assert_eq!(result.delivered_count(), 1);
        assert_eq!(result.first_delivery_time(), Some(30.0));
        assert_eq!(result.optimal_duration(), Some(30.0));
        assert_eq!(result.optimal_hops(), Some(3));
        assert_eq!(result.sample_paths.len(), 1);
        assert_eq!(
            result.sample_paths[0].nodes().collect::<Vec<_>>(),
            vec![nid(0), nid(1), nid(2)]
        );
    }

    #[test]
    fn direct_contact_delivers_in_its_slot() {
        let trace = trace_from(vec![(0, 1, 12.0, 18.0)], 2, 40.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(5));
        let result = enumerator.enumerate(&Message::new(nid(0), nid(1), 0.0));
        assert_eq!(result.delivered_count(), 1);
        assert_eq!(result.first_delivery_time(), Some(20.0));
    }

    #[test]
    fn unreachable_destination_yields_no_paths() {
        let trace = trace_from(vec![(0, 1, 0.0, 5.0)], 3, 40.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(5));
        let result = enumerator.enumerate(&Message::new(nid(0), nid(2), 0.0));
        assert_eq!(result.delivered_count(), 0);
        assert_eq!(result.optimal_duration(), None);
        assert!(!result.exploded);
    }

    #[test]
    fn message_created_after_contacts_sees_nothing() {
        let trace = trace_from(vec![(0, 1, 0.0, 5.0)], 2, 60.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(5));
        let result = enumerator.enumerate(&Message::new(nid(0), nid(1), 30.0));
        assert_eq!(result.delivered_count(), 0);
    }

    #[test]
    fn multiple_disjoint_paths_are_counted_separately() {
        // Two relays: 0-1 and 0-2 in slot 0; 1-3 and 2-3 in slot 2.
        let trace = trace_from(
            vec![(0, 1, 1.0, 5.0), (0, 2, 2.0, 6.0), (1, 3, 21.0, 25.0), (2, 3, 22.0, 26.0)],
            4,
            60.0,
        );
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(10));
        let result = enumerator.enumerate(&Message::new(nid(0), nid(3), 0.0));
        // Paths: 0->1->3 and 0->2->3, both delivered at t=30.
        assert_eq!(result.delivered_count(), 2);
        assert!(result.deliveries.iter().all(|d| d.time == 30.0));
        assert!(result.deliveries.iter().all(|d| d.hops == 3));
    }

    #[test]
    fn first_preference_prevents_later_redelivery() {
        // 0 meets 1 (slot 0); 1 meets 2=destination (slot 1); 1 meets 3
        // (slot 2); 3 meets 2 (slot 3). The only valid path is 0->1->2 at
        // t=20; the longer 0->1->3->2 would require node 1 to skip its slot-1
        // meeting with the destination.
        let trace = trace_from(
            vec![(0, 1, 1.0, 5.0), (1, 2, 11.0, 15.0), (1, 3, 21.0, 25.0), (3, 2, 31.0, 35.0)],
            4,
            60.0,
        );
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(10));
        let result = enumerator.enumerate(&Message::new(nid(0), nid(2), 0.0));
        assert_eq!(result.delivered_count(), 1);
        assert_eq!(result.first_delivery_time(), Some(20.0));
    }

    #[test]
    fn all_sample_paths_are_valid() {
        // A denser scenario with several relays and repeat contacts.
        let trace = trace_from(
            vec![
                (0, 1, 1.0, 30.0),
                (0, 2, 5.0, 40.0),
                (1, 3, 35.0, 80.0),
                (2, 3, 45.0, 90.0),
                (1, 2, 50.0, 95.0),
                (3, 4, 100.0, 140.0),
                (2, 4, 110.0, 150.0),
                (0, 3, 120.0, 160.0),
            ],
            5,
            200.0,
        );
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(50));
        let message = Message::new(nid(0), nid(4), 0.0);
        let result = enumerator.enumerate(&message);
        assert!(result.delivered_count() >= 2);
        for p in &result.sample_paths {
            assert_eq!(
                is_valid_path(&graph, p, message.destination),
                Ok(()),
                "invalid path produced: {p}"
            );
            assert_eq!(p.first().node, message.source);
            assert_eq!(p.current_node(), message.destination);
        }
        // Deliveries are in non-decreasing time order.
        for w in result.deliveries.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn explosion_stopping_rule_triggers() {
        // A hub scenario: source meets many relays, all of which meet the
        // destination in the same later slot, so more than k paths arrive at
        // once.
        let mut contacts = vec![];
        for r in 1..=6u32 {
            contacts.push((0, r, 1.0, 8.0));
            contacts.push((r, 7, 21.0, 28.0));
        }
        let trace = trace_from(contacts, 8, 60.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(3));
        let result = enumerator.enumerate(&Message::new(nid(0), nid(7), 0.0));
        assert!(result.exploded);
        assert!(result.delivered_count() >= 3);
    }

    #[test]
    fn delivery_cap_truncates() {
        let mut contacts = vec![];
        for r in 1..=6u32 {
            contacts.push((0, r, 1.0, 8.0));
            contacts.push((r, 7, 21.0, 28.0));
        }
        let trace = trace_from(contacts, 8, 60.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let config = EnumerationConfig { k: 100, max_delivered_paths: Some(2), stored_path_limit: 10, ..EnumerationConfig::default() };
        let enumerator = PathEnumerator::new(&graph, config);
        let result = enumerator.enumerate(&Message::new(nid(0), nid(7), 0.0));
        assert!(result.truncated);
        assert_eq!(result.delivered_count(), 2);
    }

    #[test]
    fn per_node_budget_keeps_shortest_paths() {
        // Node 3 can be reached directly from 0 (2 hops) or via 1 or 2
        // (3 hops). With k=1 only the shortest survives at each node, but
        // the direct delivery still happens first.
        let trace = trace_from(
            vec![(0, 1, 1.0, 5.0), (0, 2, 2.0, 6.0), (1, 4, 11.0, 15.0), (2, 4, 12.0, 16.0), (4, 3, 31.0, 35.0)],
            5,
            60.0,
        );
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(1));
        let result = enumerator.enumerate(&Message::new(nid(0), nid(3), 0.0));
        // With k = 1 at most one path is stored at node 4, so exactly one
        // delivery occurs (and it has the minimum hop count).
        assert_eq!(result.delivered_count(), 1);
        assert_eq!(result.deliveries[0].hops, 4);
    }

    #[test]
    fn stored_path_limit_bounds_samples() {
        let mut contacts = vec![];
        for r in 1..=6u32 {
            contacts.push((0, r, 1.0, 8.0));
            contacts.push((r, 7, 21.0, 28.0));
        }
        let trace = trace_from(contacts, 8, 60.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let config = EnumerationConfig { k: 100, max_delivered_paths: None, stored_path_limit: 2, ..EnumerationConfig::default() };
        let enumerator = PathEnumerator::new(&graph, config);
        let result = enumerator.enumerate(&Message::new(nid(0), nid(7), 0.0));
        assert!(result.delivered_count() >= 6);
        assert_eq!(result.sample_paths.len(), 2);
        assert!(!result.truncated);
    }

    #[test]
    #[should_panic]
    fn zero_k_is_rejected() {
        let trace = trace_from(vec![(0, 1, 0.0, 5.0)], 2, 10.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        PathEnumerator::new(&graph, EnumerationConfig { k: 0, ..EnumerationConfig::default() });
    }
}
