//! k-shortest valid-path enumeration (the paper's Fig. 3 algorithm).
//!
//! For a message `(σ, δ, t₁)` the enumerator walks the space-time graph slot
//! by slot, maintaining for every node the (up to) `k` shortest valid paths
//! from `(σ, t₁)` that currently end at that node ("shortest" = fewest
//! hops, as in the paper). At each slot:
//!
//! * every stored path whose holder can reach the destination through
//!   zero-weight (same-slot) contact edges is **delivered** — appended with
//!   the destination hop and output with the slot's end time; the stored
//!   copy is dropped, because any continuation of it would violate the
//!   first-preference rule (its holder met the destination before the later
//!   delivery time);
//! * every other stored path is **extended** to each member of its holder's
//!   contact component that is not already on the path (loop avoidance) —
//!   one appended hop per reachable node, as in the paper's "extensions to
//!   vertices reachable via paths of zero weight";
//! * paths also implicitly **wait**: a stored path stays available at its
//!   holder for the next slot without gaining a hop;
//! * per node, only the `k` shortest of the retained + newly arrived paths
//!   survive to the next slot.
//!
//! Enumeration stops when at least `k` paths reach the destination within a
//! single slot (the paper's stopping rule), when the configured maximum
//! number of delivered paths has been collected, or when the trace ends.
//!
//! ## Drivers
//!
//! Messages are independent, so the slot loop can be driven two ways with
//! bit-identical results:
//!
//! * **message-major** ([`PathEnumerator::enumerate_with_scratch`]): sweep
//!   `start_slot..end` once per message — the natural shape for one-off
//!   queries and for materialized graphs, where a slot access is a borrow;
//! * **slot-major** ([`PathEnumerator::enumerate_batch`]): pin each slot
//!   once and step every active message against it. Over a bounded-window
//!   [`WindowedSpaceTimeGraph`](crate::WindowedSpaceTimeGraph) this
//!   collapses spill reload traffic from O(messages × busy slots) to
//!   O(busy slots) per batch, because the batch revisits a cold slot at
//!   most once however many messages need it.
//!
//! ## Engine
//!
//! In-flight paths live in a parent-pointer [`PathArena`]: extending a path
//! is an O(1) arena push (the prefix is shared, never cloned), and the
//! loop-avoidance / first-preference membership tests are O(1) bitmask
//! probes for traces with ≤ 64 nodes (with an O(depth) parent-walk fallback
//! above that). Full hop sequences are only materialized for the
//! `stored_path_limit` sampled deliveries. Per-node path budgets are
//! enforced with `select_nth_unstable_by_key` partial selection instead of
//! a full sort, and all per-slot buffers live in a reusable
//! [`EnumerationScratch`]. The pre-arena algorithm — one owned `Vec<Hop>`
//! per in-flight path — is retained as
//! [`PathEnumerator::enumerate_reference`] and produces bit-identical
//! results; the property tests in this module and the `enumeration`
//! Criterion bench hold the two implementations against each other.

use psn_trace::{NodeId, Seconds};
use serde::{Deserialize, Serialize};

use crate::arena::{PathArena, PathRef};
use crate::graph::Slot;
use crate::message::Message;
use crate::path::Path;
use crate::windowed::GraphRef;

/// Configuration of a path-enumeration run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnumerationConfig {
    /// `k`: the per-node path budget and the per-slot delivery count that
    /// stops enumeration. The paper uses 2000.
    pub k: usize,
    /// Hard cap on the total number of delivered paths recorded, to bound
    /// memory when a message's destination sits inside a very large contact
    /// component. `None` keeps every delivered path.
    pub max_delivered_paths: Option<usize>,
    /// Cap on the number of delivered paths for which the *full hop
    /// sequence* is retained (delivery times are always recorded). The
    /// per-hop analyses (Figs. 14 and 15) only need a sample of
    /// near-optimal paths.
    pub stored_path_limit: usize,
    /// Whether to enforce the first-preference rule (paper §4.1). Disabling
    /// it is only useful for the validity ablation benchmark, which shows
    /// how the path counts inflate when dominated paths are kept.
    pub enforce_first_preference: bool,
}

impl Default for EnumerationConfig {
    fn default() -> Self {
        Self {
            k: 2000,
            max_delivered_paths: Some(100_000),
            stored_path_limit: 4000,
            enforce_first_preference: true,
        }
    }
}

impl EnumerationConfig {
    /// The paper's configuration (k = 2000).
    pub fn paper() -> Self {
        Self::default()
    }

    /// A reduced configuration for tests and quick experiments.
    pub fn quick(k: usize) -> Self {
        Self {
            k,
            max_delivered_paths: Some(50 * k),
            stored_path_limit: 4 * k,
            enforce_first_preference: true,
        }
    }

    /// The same configuration with the first-preference rule disabled (the
    /// validity ablation).
    pub fn without_first_preference(mut self) -> Self {
        self.enforce_first_preference = false;
        self
    }
}

/// One delivery event: a valid path reached the destination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Delivery {
    /// Absolute delivery time (slot end time), seconds.
    pub time: Seconds,
    /// Number of hops (tuples) of the delivered path, including source and
    /// destination.
    pub hops: usize,
}

/// The result of enumerating paths for one message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnumerationResult {
    /// The message that was enumerated.
    pub message: Message,
    /// Every recorded delivery in non-decreasing time order.
    pub deliveries: Vec<Delivery>,
    /// Full hop sequences for the first `stored_path_limit` delivered paths.
    pub sample_paths: Vec<Path>,
    /// True if enumeration stopped because `k` or more paths arrived in one
    /// slot (the paper's explosion-detection stopping rule).
    pub exploded: bool,
    /// True if the total-delivery cap was hit before the per-slot rule.
    pub truncated: bool,
    /// Number of slots processed.
    pub slots_processed: usize,
}

impl EnumerationResult {
    /// Number of recorded deliveries.
    pub fn delivered_count(&self) -> usize {
        self.deliveries.len()
    }

    /// Delivery time of the first (optimal) path, if any path was found.
    pub fn first_delivery_time(&self) -> Option<Seconds> {
        self.deliveries.first().map(|d| d.time)
    }

    /// Duration of the optimal path (T₁ in the paper): first delivery time
    /// minus message creation time.
    pub fn optimal_duration(&self) -> Option<Seconds> {
        self.first_delivery_time().map(|t| t - self.message.created_at)
    }

    /// Delivery time of the n-th path (1-based), if at least `n` paths were
    /// recorded.
    pub fn nth_delivery_time(&self, n: usize) -> Option<Seconds> {
        if n == 0 {
            return None;
        }
        self.deliveries.get(n - 1).map(|d| d.time)
    }

    /// Hop count of the optimal (first-delivered) path.
    pub fn optimal_hops(&self) -> Option<usize> {
        self.deliveries.first().map(|d| d.hops)
    }
}

/// An unmaterialized arrival: a stored path that would extend to the inbox
/// node this slot, plus the keys deciding whether it can survive the
/// per-node k-selection.
///
/// Arrivals used to be materialized into the arena immediately, which made
/// arena growth proportional to the *candidate* count — at 1000 nodes with
/// near-complete contact components that is `holders × k × component` new
/// entries per slot (tens of gigabytes per message). Keeping candidates as
/// `(parent, depth, seq)` triples and pruning each inbox online to the `k`
/// smallest `(depth, seq)` keys bounds arena growth to at most `k`
/// materialized survivors per touched node per slot, and the final
/// selection outcome is unchanged: the key order is exactly the order
/// [`PathEnumerator`] selection uses for the arrival portion of the merge,
/// so a pruned candidate could never have been selected.
#[derive(Debug, Clone, Copy)]
struct ArrivalCandidate {
    /// The stored path being extended.
    parent: PathRef,
    /// Hop depth of the would-be child (`depth(parent) + 1`).
    depth: u32,
    /// Per-slot arrival sequence number (the tie-break: earlier wins).
    seq: u64,
}

/// Reusable per-message working memory of the arena engine.
///
/// All allocations the enumerator needs — the path arena, the per-node
/// stored/arrival lists, the near-destination flags — live here and are
/// recycled between messages. Callers that enumerate many messages (the
/// explosion and paths-taken drivers, the benches) should create one
/// scratch per worker and use
/// [`PathEnumerator::enumerate_with_scratch`]; one-shot callers can use
/// [`PathEnumerator::enumerate`], which owns a temporary scratch.
#[derive(Debug, Clone, Default)]
pub struct EnumerationScratch {
    arena: PathArena,
    /// Arena refs of in-flight paths per node, sorted shortest-first.
    stored: Vec<Vec<PathRef>>,
    /// Unmaterialized arrival candidates per node within the current slot,
    /// pruned online to the `k` best so arena growth stays bounded.
    arrivals: Vec<Vec<ArrivalCandidate>>,
    /// Materialized arena refs of the surviving arrivals of one inbox.
    arrival_refs: Vec<PathRef>,
    /// Nodes that can reach the destination via zero-weight edges this slot.
    near_destination: Vec<bool>,
    /// The nodes flagged in `near_destination`, for O(set) clearing.
    near_list: Vec<u32>,
    /// Nodes with at least one arrival this slot.
    touched: Vec<u32>,
    /// Nodes with at least one stored path, ascending.
    holders: Vec<u32>,
    /// Holder list snapshot iterated while `stored` is mutated.
    holders_snapshot: Vec<u32>,
    /// Double buffer for the per-slot holder-list refresh.
    holders_next: Vec<u32>,
    /// `(packed depth‖insertion-order key, path)` buffer for the k-shortest
    /// selection — keys are precomputed so the selection compares plain
    /// integers instead of chasing arena entries.
    merge_buf: Vec<(u64, PathRef)>,
}

impl EnumerationScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets for a new message over a graph with `n` nodes.
    ///
    /// The previous run leaves `arrivals` and `near_destination` clean (they
    /// are drained every slot via `touched` / `near_list`); only `stored`
    /// can carry paths across runs, and `holders` indexes exactly the nodes
    /// that might.
    fn reset(&mut self, n: usize) {
        self.arena.clear(n);
        if self.stored.len() < n {
            self.stored.resize_with(n, Vec::new);
            self.arrivals.resize_with(n, Vec::new);
        }
        if self.near_destination.len() < n {
            self.near_destination.resize(n, false);
        }
        for &h in &self.holders {
            self.stored[h as usize].clear();
        }
        self.holders.clear();
    }
}

/// Per-message progress of one enumeration run, shared by the
/// message-major and slot-major drivers. All algorithmic mutation happens
/// in [`PathEnumerator::step_slot`]; a driver only decides *when* each run
/// sees each slot, which is why the two drivers are bit-identical.
#[derive(Debug, Default)]
struct RunState {
    deliveries: Vec<Delivery>,
    sample_paths: Vec<Path>,
    exploded: bool,
    truncated: bool,
    /// The slot containing the message's creation time: the first slot this
    /// run may observe.
    start_slot: usize,
    slots_processed: usize,
    /// Arrival tie-break counter: earlier candidates win equal-depth
    /// selections, reproducing the materialize-everything order exactly.
    candidate_seq: u64,
    /// Set when the run stopped early (truncation or explosion); the driver
    /// must not step it again.
    done: bool,
}

/// The per-message k-shortest valid path enumerator.
///
/// Works over either space-time graph representation through [`GraphRef`]:
/// the fully materialized [`SpaceTimeGraph`](crate::SpaceTimeGraph) or the
/// bounded-window [`WindowedSpaceTimeGraph`](crate::WindowedSpaceTimeGraph).
/// The hot loop pins each slot once per iteration (a no-op borrow for the
/// materialized graph, a hot-set lookup or spill reload for the windowed
/// one) and reads every per-node query off that pinned slot.
#[derive(Debug, Clone)]
pub struct PathEnumerator<'a> {
    graph: GraphRef<'a>,
    config: EnumerationConfig,
}

impl<'a> PathEnumerator<'a> {
    /// Creates an enumerator over a space-time graph (either
    /// representation).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(graph: impl Into<GraphRef<'a>>, config: EnumerationConfig) -> Self {
        assert!(config.k > 0, "k must be at least 1");
        Self { graph: graph.into(), config }
    }

    /// The enumeration configuration.
    pub fn config(&self) -> &EnumerationConfig {
        &self.config
    }

    /// Enumerates valid paths for `message`, in delivery-time order.
    pub fn enumerate(&self, message: &Message) -> EnumerationResult {
        let mut scratch = EnumerationScratch::new();
        self.enumerate_with_scratch(message, &mut scratch)
    }

    /// Enumerates valid paths for `message`, reusing `scratch`'s buffers.
    /// Equivalent to [`enumerate`](Self::enumerate) but amortizes all
    /// allocations across messages.
    pub fn enumerate_with_scratch(
        &self,
        message: &Message,
        scratch: &mut EnumerationScratch,
    ) -> EnumerationResult {
        let graph = self.graph;
        let mut state = self.begin_run(message, scratch);
        for s in state.start_slot..graph.slot_count() {
            let slot_time = graph.slot_end_time(s);
            let slot = graph.slot(s);
            self.step_slot(message, scratch, &mut state, &slot, slot_time);
            if state.done {
                break;
            }
        }
        Self::finish_run(message, state)
    }

    /// Enumerates a batch of messages in one slot-major sweep, reusing (and
    /// growing on demand) a pool of one scratch per message.
    ///
    /// Result `i` is bit-identical to `enumerate(&messages[i])`: runs are
    /// fully independent — separate scratch, separate [`RunState`] — and
    /// each sees exactly the slot sequence the message-major driver would
    /// show it. Only the visit *order* changes: each slot is pinned once
    /// via [`GraphRef::slot`] and every active run steps against that one
    /// pinned slot. Over a [`WindowedSpaceTimeGraph`] this means a spilled
    /// slot is reloaded at most once per batch instead of once per message
    /// (the `spill_loads` counter pins the reduction in tests); over a
    /// materialized graph it is simply a different loop nesting.
    ///
    /// [`WindowedSpaceTimeGraph`]: crate::WindowedSpaceTimeGraph
    pub fn enumerate_batch(
        &self,
        messages: &[Message],
        scratches: &mut Vec<EnumerationScratch>,
    ) -> Vec<EnumerationResult> {
        let graph = self.graph;
        if messages.is_empty() {
            return Vec::new();
        }
        if scratches.len() < messages.len() {
            scratches.resize_with(messages.len(), EnumerationScratch::new);
        }
        let mut states: Vec<RunState> = messages
            .iter()
            .zip(scratches.iter_mut())
            .map(|(message, scratch)| self.begin_run(message, scratch))
            .collect();
        let first_slot = states.iter().map(|st| st.start_slot).min().unwrap_or(0);
        let mut active = states.len();
        for s in first_slot..graph.slot_count() {
            if active == 0 {
                break;
            }
            let slot_time = graph.slot_end_time(s);
            let slot = graph.slot(s);
            for ((message, scratch), state) in
                messages.iter().zip(scratches.iter_mut()).zip(states.iter_mut())
            {
                if state.done || s < state.start_slot {
                    continue;
                }
                self.step_slot(message, scratch, state, &slot, slot_time);
                if state.done {
                    active -= 1;
                }
            }
        }
        messages
            .iter()
            .zip(states)
            .map(|(message, state)| Self::finish_run(message, state))
            .collect()
    }

    /// Seeds `scratch` and a fresh [`RunState`] for one message: the
    /// trivial source path is stored at the source node and the sweep is
    /// positioned at the slot containing the creation time.
    fn begin_run(&self, message: &Message, scratch: &mut EnumerationScratch) -> RunState {
        scratch.reset(self.graph.node_count());
        let source_ref = scratch.arena.root(message.source, message.created_at);
        scratch.stored[message.source.index()].push(source_ref);
        scratch.holders.push(message.source.0);
        RunState { start_slot: self.graph.slot_of_time(message.created_at), ..RunState::default() }
    }

    /// Sorts the recorded deliveries and packages the run into its result.
    fn finish_run(message: &Message, mut state: RunState) -> EnumerationResult {
        state
            .deliveries
            .sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite").then(a.hops.cmp(&b.hops)));
        EnumerationResult {
            message: *message,
            deliveries: state.deliveries,
            sample_paths: state.sample_paths,
            exploded: state.exploded,
            truncated: state.truncated,
            slots_processed: state.slots_processed,
        }
    }

    /// Advances one run through one slot: deliver, prune, extend, select.
    /// `slot` must be the pinned slot `s` of this enumerator's graph and
    /// `slot_time` its end time; the caller guarantees
    /// `state.start_slot <= s` and `!state.done`, and slots are presented
    /// in strictly ascending order.
    fn step_slot(
        &self,
        message: &Message,
        scratch: &mut EnumerationScratch,
        state: &mut RunState,
        slot: &Slot,
        slot_time: Seconds,
    ) {
        let k = self.config.k;
        let destination = message.destination;
        state.slots_processed += 1;
        let destination_active = slot.has_contacts(destination);

        // Nodes able to reach the destination through zero-weight edges
        // this slot (the destination's component, including itself). Any
        // path one of whose nodes lies in this set either delivers now
        // (if its current holder is in the set) or becomes invalid under
        // the first-preference rule: that earlier holder keeps a copy
        // forever and would have delivered it now, so any later delivery
        // of this path is dominated.
        let mut near_mask = 0u64;
        if destination_active {
            for &m in slot.component_slice(destination) {
                scratch.near_destination[m.index()] = true;
                scratch.near_list.push(m.0);
                near_mask |= 1u64 << (m.0 & 63);
            }
        }

        let mut delivered_this_slot: usize = 0;

        scratch.holders_snapshot.clear();
        scratch.holders_snapshot.extend_from_slice(&scratch.holders);
        for &holder_u32 in &scratch.holders_snapshot {
            let holder_idx = holder_u32 as usize;
            if scratch.stored[holder_idx].is_empty() {
                continue;
            }
            let holder = NodeId(holder_u32);
            let delivers =
                destination_active && holder != destination && scratch.near_destination[holder_idx];

            if delivers {
                // Every stored path at this holder is delivered now.
                // Under the first-preference rule the stored copies are
                // also removed afterwards: continuing them would be
                // dominated by the delivery that just happened.
                for i in 0..scratch.stored[holder_idx].len() {
                    let r = scratch.stored[holder_idx][i];
                    delivered_this_slot += 1;
                    let hops = scratch.arena.depth(r) as usize + 1;
                    state.deliveries.push(Delivery { time: slot_time, hops });
                    if state.sample_paths.len() < self.config.stored_path_limit {
                        state.sample_paths.push(scratch.arena.materialize_extended(
                            r,
                            destination,
                            slot_time,
                        ));
                    }
                    if let Some(cap) = self.config.max_delivered_paths {
                        if state.deliveries.len() >= cap {
                            state.truncated = true;
                            break;
                        }
                    }
                }
                if self.config.enforce_first_preference {
                    scratch.stored[holder_idx].clear();
                }
            } else {
                // Drop paths that carry a node which meets the
                // destination this slot (first preference: that node
                // still holds a copy and delivers it now, so this longer
                // continuation can never be a first-preference path).
                if destination_active && self.config.enforce_first_preference {
                    let arena = &scratch.arena;
                    let near = &scratch.near_destination;
                    scratch.stored[holder_idx].retain(|&r| !arena.intersects(r, near_mask, near));
                }
                if scratch.stored[holder_idx].is_empty() || !slot.has_contacts(holder) {
                    // Nothing to extend; surviving paths simply wait.
                    continue;
                }
                // Extend to every component member not already on the
                // path. The holder itself and the destination are never
                // extension targets: the holder is on its own path (so
                // the contains check skips it), and the destination is
                // either inactive or in another component (its own
                // component delivers above).
                let members = slot.component_slice(holder);
                for i in 0..scratch.stored[holder_idx].len() {
                    let r = scratch.stored[holder_idx][i];
                    let child_depth = scratch.arena.depth(r) + 1;
                    for &v in members {
                        if scratch.arena.contains(r, v) {
                            continue;
                        }
                        let inbox = &mut scratch.arrivals[v.index()];
                        if inbox.is_empty() {
                            scratch.touched.push(v.0);
                        }
                        inbox.push(ArrivalCandidate {
                            parent: r,
                            depth: child_depth,
                            seq: state.candidate_seq,
                        });
                        state.candidate_seq += 1;
                        // Amortized-O(1) online pruning: once the inbox
                        // doubles past k, keep only the k smallest
                        // (depth, seq) keys — exactly the candidates
                        // that could still survive this node's final
                        // selection.
                        if inbox.len() >= 2 * k {
                            inbox.select_nth_unstable_by_key(k - 1, |c| (c.depth, c.seq));
                            inbox.truncate(k);
                        }
                    }
                }
            }

            if state.truncated {
                break;
            }
        }

        // Merge arrivals with retained paths and keep the k shortest per
        // node (fewest hops first; earlier arrival wins ties because
        // retained paths sort before arrivals of equal length). Only
        // nodes that actually received arrivals need any work.
        if !state.truncated {
            scratch.touched.sort_unstable();
            for t in 0..scratch.touched.len() {
                let idx = scratch.touched[t] as usize;
                // Final candidate selection for this inbox, then
                // materialize only the survivors into the arena, in
                // arrival order (seq), so the merge below sees the same
                // relative order the unbounded engine produced.
                let inbox = &mut scratch.arrivals[idx];
                if inbox.len() > k {
                    inbox.select_nth_unstable_by_key(k - 1, |c| (c.depth, c.seq));
                    inbox.truncate(k);
                }
                inbox.sort_unstable_by_key(|c| c.seq);
                scratch.arrival_refs.clear();
                for i in 0..scratch.arrivals[idx].len() {
                    let c = scratch.arrivals[idx][i];
                    scratch.arrival_refs.push(scratch.arena.extend(
                        c.parent,
                        NodeId(scratch.touched[t]),
                        slot_time,
                    ));
                }
                scratch.arrivals[idx].clear();
                Self::keep_k_shortest(
                    &scratch.arena,
                    &mut scratch.stored[idx],
                    &mut scratch.arrival_refs,
                    &mut scratch.merge_buf,
                    k,
                );
            }
            // Refresh the holder list: previous holders that still hold
            // paths plus newly touched nodes, ascending and deduplicated.
            scratch.holders_next.clear();
            merge_sorted_into(&scratch.holders, &scratch.touched, &mut scratch.holders_next);
            std::mem::swap(&mut scratch.holders, &mut scratch.holders_next);
            let stored = &scratch.stored;
            scratch.holders.retain(|&h| !stored[h as usize].is_empty());
        } else {
            for &t in &scratch.touched {
                scratch.arrivals[t as usize].clear();
            }
        }
        scratch.touched.clear();

        for &m in &scratch.near_list {
            scratch.near_destination[m as usize] = false;
        }
        scratch.near_list.clear();

        if state.truncated {
            state.done = true;
            return;
        }
        if delivered_this_slot >= k {
            state.exploded = true;
            state.done = true;
        }
    }

    /// Merges `arrivals` into `stored` keeping the `k` shortest paths,
    /// shortest-first with earlier insertion winning ties — exactly the
    /// order a stable full sort of `stored ++ arrivals` by depth would
    /// produce, but using partial selection so the cost is O(m + k log k)
    /// instead of O(m log m) for m merged candidates.
    ///
    /// Each candidate's sort key is packed once up front as
    /// `depth << 32 | insertion order`, read off the arena's dense
    /// [`PathArena::depths`] slice: the selection and sort then compare
    /// plain `u64`s — no arena indirection per comparison, no tuple
    /// branching — and because the insertion order makes every key unique,
    /// the packed order is exactly the `(depth, seq)` lexicographic order.
    fn keep_k_shortest(
        arena: &PathArena,
        stored: &mut Vec<PathRef>,
        arrivals: &mut Vec<PathRef>,
        merge_buf: &mut Vec<(u64, PathRef)>,
        k: usize,
    ) {
        debug_assert!(stored.len() + arrivals.len() < u32::MAX as usize);
        merge_buf.clear();
        let depths = arena.depths();
        merge_buf.extend(
            stored
                .iter()
                .chain(arrivals.iter())
                .enumerate()
                .map(|(seq, &r)| (((depths[r as usize] as u64) << 32) | seq as u64, r)),
        );
        arrivals.clear();
        if merge_buf.len() > k {
            merge_buf.select_nth_unstable_by_key(k - 1, |&(key, _)| key);
            merge_buf.truncate(k);
        }
        merge_buf.sort_unstable_by_key(|&(key, _)| key);
        stored.clear();
        stored.extend(merge_buf.iter().map(|&(_, r)| r));
    }

    /// The pre-arena reference implementation: every in-flight path is an
    /// owned [`Path`] and each extension clones the whole hop vector.
    ///
    /// Retained for differential testing (the property tests assert the
    /// arena engine reproduces its output exactly) and for the
    /// `enumeration` Criterion bench, which measures the arena speedup
    /// against it. New callers should use [`enumerate`](Self::enumerate).
    pub fn enumerate_reference(&self, message: &Message) -> EnumerationResult {
        let graph = self.graph;
        let k = self.config.k;
        let n = graph.node_count();
        let destination = message.destination;

        // Stored paths per node. The source starts with its trivial path.
        let mut stored: Vec<Vec<Path>> = vec![Vec::new(); n];
        stored[message.source.index()].push(Path::source(message.source, message.created_at));

        let mut deliveries: Vec<Delivery> = Vec::new();
        let mut sample_paths: Vec<Path> = Vec::new();
        let mut exploded = false;
        let mut truncated = false;

        let start_slot = graph.slot_of_time(message.created_at);
        let mut slots_processed = 0;

        'slots: for s in start_slot..graph.slot_count() {
            slots_processed += 1;
            let slot_time = graph.slot_end_time(s);
            let slot = graph.slot(s);
            let destination_active = slot.has_contacts(destination);

            let mut near_destination = vec![false; n];
            if destination_active {
                near_destination[destination.index()] = true;
                for m in slot.component_members(destination) {
                    near_destination[m.index()] = true;
                }
            }

            // Newly arrived paths per node this slot.
            let mut arrivals: Vec<Vec<Path>> = vec![Vec::new(); n];
            let mut delivered_this_slot: usize = 0;

            for holder_idx in 0..n {
                if stored[holder_idx].is_empty() {
                    continue;
                }
                let holder = NodeId(holder_idx as u32);
                let delivers =
                    destination_active && holder != destination && near_destination[holder_idx];

                if delivers {
                    let paths = if self.config.enforce_first_preference {
                        std::mem::take(&mut stored[holder_idx])
                    } else {
                        stored[holder_idx].clone()
                    };
                    for p in paths {
                        delivered_this_slot += 1;
                        let hops = p.len() + 1;
                        deliveries.push(Delivery { time: slot_time, hops });
                        if sample_paths.len() < self.config.stored_path_limit {
                            sample_paths.push(p.extended(destination, slot_time));
                        }
                        if let Some(cap) = self.config.max_delivered_paths {
                            if deliveries.len() >= cap {
                                truncated = true;
                                break;
                            }
                        }
                    }
                } else {
                    if destination_active && self.config.enforce_first_preference {
                        stored[holder_idx]
                            .retain(|p| !p.nodes().any(|node| near_destination[node.index()]));
                    }
                    if stored[holder_idx].is_empty() || !slot.has_contacts(holder) {
                        continue;
                    }
                    let members = slot.component_members(holder);
                    for p in &stored[holder_idx] {
                        for &v in &members {
                            if p.contains(v) {
                                continue;
                            }
                            arrivals[v.index()].push(p.extended(v, slot_time));
                        }
                    }
                }

                if truncated {
                    break;
                }
            }

            for idx in 0..n {
                if arrivals[idx].is_empty() {
                    continue;
                }
                let mut merged = std::mem::take(&mut stored[idx]);
                merged.append(&mut arrivals[idx]);
                merged.sort_by_key(|p| p.len());
                merged.truncate(k);
                stored[idx] = merged;
            }

            if truncated {
                break 'slots;
            }
            if delivered_this_slot >= k {
                exploded = true;
                break 'slots;
            }
        }

        deliveries
            .sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite").then(a.hops.cmp(&b.hops)));

        EnumerationResult {
            message: *message,
            deliveries,
            sample_paths,
            exploded,
            truncated,
            slots_processed,
        }
    }
}

/// Merges two ascending `u32` slices into `out`, ascending and
/// deduplicated.
fn merge_sorted_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SpaceTimeGraph;
    use crate::validity::is_valid_path;
    use psn_trace::contact::Contact;
    use psn_trace::node::{NodeClass, NodeRegistry};
    use psn_trace::trace::{ContactTrace, TimeWindow};

    fn nid(v: u32) -> NodeId {
        NodeId(v)
    }

    fn trace_from(contacts: Vec<(u32, u32, f64, f64)>, nodes: usize, end: f64) -> ContactTrace {
        let mut reg = NodeRegistry::new();
        for _ in 0..nodes {
            reg.add(NodeClass::Mobile);
        }
        let cs = contacts
            .into_iter()
            .map(|(a, b, s, e)| Contact::new(nid(a), nid(b), s, e).unwrap())
            .collect();
        ContactTrace::from_contacts("enum-test", reg, TimeWindow::new(0.0, end), cs).unwrap()
    }

    #[test]
    fn two_hop_chain_is_found() {
        // 0 meets 1 in slot 0, 1 meets 2 in slot 2.
        let trace = trace_from(vec![(0, 1, 1.0, 5.0), (1, 2, 21.0, 25.0)], 3, 60.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(10));
        let result = enumerator.enumerate(&Message::new(nid(0), nid(2), 0.0));
        assert_eq!(result.delivered_count(), 1);
        assert_eq!(result.first_delivery_time(), Some(30.0));
        assert_eq!(result.optimal_duration(), Some(30.0));
        assert_eq!(result.optimal_hops(), Some(3));
        assert_eq!(result.sample_paths.len(), 1);
        assert_eq!(
            result.sample_paths[0].nodes().collect::<Vec<_>>(),
            vec![nid(0), nid(1), nid(2)]
        );
    }

    #[test]
    fn direct_contact_delivers_in_its_slot() {
        let trace = trace_from(vec![(0, 1, 12.0, 18.0)], 2, 40.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(5));
        let result = enumerator.enumerate(&Message::new(nid(0), nid(1), 0.0));
        assert_eq!(result.delivered_count(), 1);
        assert_eq!(result.first_delivery_time(), Some(20.0));
    }

    #[test]
    fn unreachable_destination_yields_no_paths() {
        let trace = trace_from(vec![(0, 1, 0.0, 5.0)], 3, 40.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(5));
        let result = enumerator.enumerate(&Message::new(nid(0), nid(2), 0.0));
        assert_eq!(result.delivered_count(), 0);
        assert_eq!(result.optimal_duration(), None);
        assert!(!result.exploded);
    }

    #[test]
    fn message_created_after_contacts_sees_nothing() {
        let trace = trace_from(vec![(0, 1, 0.0, 5.0)], 2, 60.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(5));
        let result = enumerator.enumerate(&Message::new(nid(0), nid(1), 30.0));
        assert_eq!(result.delivered_count(), 0);
    }

    #[test]
    fn multiple_disjoint_paths_are_counted_separately() {
        // Two relays: 0-1 and 0-2 in slot 0; 1-3 and 2-3 in slot 2.
        let trace = trace_from(
            vec![(0, 1, 1.0, 5.0), (0, 2, 2.0, 6.0), (1, 3, 21.0, 25.0), (2, 3, 22.0, 26.0)],
            4,
            60.0,
        );
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(10));
        let result = enumerator.enumerate(&Message::new(nid(0), nid(3), 0.0));
        // Paths: 0->1->3 and 0->2->3, both delivered at t=30.
        assert_eq!(result.delivered_count(), 2);
        assert!(result.deliveries.iter().all(|d| d.time == 30.0));
        assert!(result.deliveries.iter().all(|d| d.hops == 3));
    }

    #[test]
    fn first_preference_prevents_later_redelivery() {
        // 0 meets 1 (slot 0); 1 meets 2=destination (slot 1); 1 meets 3
        // (slot 2); 3 meets 2 (slot 3). The only valid path is 0->1->2 at
        // t=20; the longer 0->1->3->2 would require node 1 to skip its slot-1
        // meeting with the destination.
        let trace = trace_from(
            vec![(0, 1, 1.0, 5.0), (1, 2, 11.0, 15.0), (1, 3, 21.0, 25.0), (3, 2, 31.0, 35.0)],
            4,
            60.0,
        );
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(10));
        let result = enumerator.enumerate(&Message::new(nid(0), nid(2), 0.0));
        assert_eq!(result.delivered_count(), 1);
        assert_eq!(result.first_delivery_time(), Some(20.0));
    }

    #[test]
    fn all_sample_paths_are_valid() {
        // A denser scenario with several relays and repeat contacts.
        let trace = trace_from(
            vec![
                (0, 1, 1.0, 30.0),
                (0, 2, 5.0, 40.0),
                (1, 3, 35.0, 80.0),
                (2, 3, 45.0, 90.0),
                (1, 2, 50.0, 95.0),
                (3, 4, 100.0, 140.0),
                (2, 4, 110.0, 150.0),
                (0, 3, 120.0, 160.0),
            ],
            5,
            200.0,
        );
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(50));
        let message = Message::new(nid(0), nid(4), 0.0);
        let result = enumerator.enumerate(&message);
        assert!(result.delivered_count() >= 2);
        for p in &result.sample_paths {
            assert_eq!(
                is_valid_path(&graph, p, message.destination),
                Ok(()),
                "invalid path produced: {p}"
            );
            assert_eq!(p.first().node, message.source);
            assert_eq!(p.current_node(), message.destination);
        }
        // Deliveries are in non-decreasing time order.
        for w in result.deliveries.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn explosion_stopping_rule_triggers() {
        // A hub scenario: source meets many relays, all of which meet the
        // destination in the same later slot, so more than k paths arrive at
        // once.
        let mut contacts = vec![];
        for r in 1..=6u32 {
            contacts.push((0, r, 1.0, 8.0));
            contacts.push((r, 7, 21.0, 28.0));
        }
        let trace = trace_from(contacts, 8, 60.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(3));
        let result = enumerator.enumerate(&Message::new(nid(0), nid(7), 0.0));
        assert!(result.exploded);
        assert!(result.delivered_count() >= 3);
    }

    #[test]
    fn delivery_cap_truncates() {
        let mut contacts = vec![];
        for r in 1..=6u32 {
            contacts.push((0, r, 1.0, 8.0));
            contacts.push((r, 7, 21.0, 28.0));
        }
        let trace = trace_from(contacts, 8, 60.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let config = EnumerationConfig {
            k: 100,
            max_delivered_paths: Some(2),
            stored_path_limit: 10,
            ..EnumerationConfig::default()
        };
        let enumerator = PathEnumerator::new(&graph, config.clone());
        let result = enumerator.enumerate(&Message::new(nid(0), nid(7), 0.0));
        assert!(result.truncated);
        // The clamp is exact: not one delivery past the cap is recorded,
        // even though the batch that hit the cap held more paths.
        assert_eq!(result.delivered_count(), config.max_delivered_paths.unwrap());
        assert!(!result.exploded);
    }

    #[test]
    fn delivery_cap_is_exact_across_holder_batches() {
        // Six relays hold one path each when the destination appears, so the
        // cap lands mid-way through the per-holder delivery sweep. Every cap
        // value must clamp exactly — no overshoot from paths already pushed
        // in the same or subsequent holder batches.
        let mut contacts = vec![];
        for r in 1..=6u32 {
            contacts.push((0, r, 1.0, 8.0));
            contacts.push((r, 7, 21.0, 28.0));
        }
        let trace = trace_from(contacts, 8, 60.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        for cap in 1..=6 {
            let config = EnumerationConfig {
                k: 100,
                max_delivered_paths: Some(cap),
                stored_path_limit: 10,
                ..EnumerationConfig::default()
            };
            let enumerator = PathEnumerator::new(&graph, config);
            let result = enumerator.enumerate(&Message::new(nid(0), nid(7), 0.0));
            assert_eq!(result.delivered_count(), cap, "cap {cap} must clamp exactly");
            // The cap fires the moment the count reaches it, so the run is
            // flagged truncated even when the cap equals the total.
            assert!(result.truncated, "cap {cap}");
        }
    }

    #[test]
    fn per_node_budget_keeps_shortest_paths() {
        // Node 3 can be reached directly from 0 (2 hops) or via 1 or 2
        // (3 hops). With k=1 only the shortest survives at each node, but
        // the direct delivery still happens first.
        let trace = trace_from(
            vec![
                (0, 1, 1.0, 5.0),
                (0, 2, 2.0, 6.0),
                (1, 4, 11.0, 15.0),
                (2, 4, 12.0, 16.0),
                (4, 3, 31.0, 35.0),
            ],
            5,
            60.0,
        );
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(1));
        let result = enumerator.enumerate(&Message::new(nid(0), nid(3), 0.0));
        // With k = 1 at most one path is stored at node 4, so exactly one
        // delivery occurs (and it has the minimum hop count).
        assert_eq!(result.delivered_count(), 1);
        assert_eq!(result.deliveries[0].hops, 4);
    }

    #[test]
    fn stored_path_limit_bounds_samples() {
        let mut contacts = vec![];
        for r in 1..=6u32 {
            contacts.push((0, r, 1.0, 8.0));
            contacts.push((r, 7, 21.0, 28.0));
        }
        let trace = trace_from(contacts, 8, 60.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let config = EnumerationConfig {
            k: 100,
            max_delivered_paths: None,
            stored_path_limit: 2,
            ..EnumerationConfig::default()
        };
        let enumerator = PathEnumerator::new(&graph, config);
        let result = enumerator.enumerate(&Message::new(nid(0), nid(7), 0.0));
        assert!(result.delivered_count() >= 6);
        assert_eq!(result.sample_paths.len(), 2);
        assert!(!result.truncated);
    }

    #[test]
    #[should_panic]
    fn zero_k_is_rejected() {
        let trace = trace_from(vec![(0, 1, 0.0, 5.0)], 2, 10.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        PathEnumerator::new(&graph, EnumerationConfig { k: 0, ..EnumerationConfig::default() });
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let trace = trace_from(
            vec![(0, 1, 1.0, 5.0), (0, 2, 2.0, 6.0), (1, 3, 21.0, 25.0), (2, 3, 22.0, 26.0)],
            4,
            60.0,
        );
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(10));
        let mut scratch = EnumerationScratch::new();
        for message in [
            Message::new(nid(0), nid(3), 0.0),
            Message::new(nid(1), nid(2), 0.0),
            Message::new(nid(0), nid(3), 0.0),
            Message::new(nid(3), nid(0), 15.0),
        ] {
            let reused = enumerator.enumerate_with_scratch(&message, &mut scratch);
            let fresh = enumerator.enumerate(&message);
            assert_eq!(reused.deliveries, fresh.deliveries, "message {message}");
            assert_eq!(reused.sample_paths, fresh.sample_paths, "message {message}");
            assert_eq!(reused.exploded, fresh.exploded);
            assert_eq!(reused.truncated, fresh.truncated);
            assert_eq!(reused.slots_processed, fresh.slots_processed);
        }
    }

    // ------------------------------------------------------------------
    // Differential property tests: the arena engine must reproduce the
    // retained reference implementation exactly.
    // ------------------------------------------------------------------

    /// Deterministic pseudo-random trace: `contact_count` contacts with
    /// uniform endpoints and start times, geometric-ish durations.
    fn random_trace(seed: u64, nodes: usize, contact_count: usize, window: f64) -> ContactTrace {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut contacts = Vec::with_capacity(contact_count);
        for _ in 0..contact_count {
            let a = rng.gen_range(0..nodes as u32);
            let mut b = rng.gen_range(0..nodes as u32);
            while b == a {
                b = rng.gen_range(0..nodes as u32);
            }
            let start = rng.gen_range(0.0..window * 0.9);
            let duration = rng.gen_range(1.0..window * 0.15);
            contacts.push((a, b, start, (start + duration).min(window)));
        }
        trace_from(contacts, nodes, window)
    }

    fn assert_equivalent(
        enumerator: &PathEnumerator<'_>,
        graph: &SpaceTimeGraph,
        message: &Message,
        scratch: &mut EnumerationScratch,
    ) {
        let arena = enumerator.enumerate_with_scratch(message, scratch);
        let reference = enumerator.enumerate_reference(message);
        assert_eq!(arena.deliveries, reference.deliveries, "deliveries differ for {message}");
        assert_eq!(arena.exploded, reference.exploded, "explosion flag differs for {message}");
        assert_eq!(arena.truncated, reference.truncated, "truncation flag differs for {message}");
        assert_eq!(
            arena.slots_processed, reference.slots_processed,
            "slot count differs for {message}"
        );
        assert_eq!(
            arena.sample_paths, reference.sample_paths,
            "sampled hop sequences differ for {message}"
        );
        // Sampled paths must satisfy the full validity rules — except under
        // the ablation that deliberately disables first preference, where
        // dominated paths are the point.
        if enumerator.config().enforce_first_preference {
            for p in &arena.sample_paths {
                assert_eq!(
                    is_valid_path(graph, p, message.destination),
                    Ok(()),
                    "arena produced invalid path {p} for {message}"
                );
            }
        }
    }

    #[test]
    fn arena_matches_reference_on_random_small_traces() {
        // Small node counts exercise the exact-bitmask fast path.
        let mut scratch = EnumerationScratch::new();
        for seed in 0..12u64 {
            let nodes = 4 + (seed as usize % 9);
            let trace = random_trace(seed, nodes, 24 + 3 * seed as usize, 400.0);
            let graph = SpaceTimeGraph::build_default(&trace);
            for k in [1usize, 2, 7, 40] {
                let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(k));
                for (src, dst) in [(0u32, 1u32), (1, 3), (2, 0)] {
                    let message = Message::new(nid(src), nid(dst), 10.0 * (seed % 5) as f64);
                    assert_equivalent(&enumerator, &graph, &message, &mut scratch);
                }
            }
        }
    }

    #[test]
    fn arena_matches_reference_beyond_64_nodes() {
        // More than 64 nodes: the bitmask degrades to a filter and the
        // membership checks take the parent-walk fallback.
        let mut scratch = EnumerationScratch::new();
        for seed in 100..106u64 {
            let nodes = 66 + (seed as usize % 7);
            let trace = random_trace(seed, nodes, 160, 500.0);
            let graph = SpaceTimeGraph::build_default(&trace);
            let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(12));
            // Endpoints chosen to straddle the 64-bit boundary.
            for (src, dst) in [(0u32, 65u32), (65, 1), (10, 64)] {
                let message = Message::new(nid(src), nid(dst), 0.0);
                assert_equivalent(&enumerator, &graph, &message, &mut scratch);
            }
        }
    }

    #[test]
    fn arena_matches_reference_with_caps_and_ablation() {
        // Tight delivery caps, tight sample limits, and the disabled
        // first-preference ablation all hit distinct branches.
        let mut scratch = EnumerationScratch::new();
        for seed in 40..46u64 {
            let trace = random_trace(seed, 10, 60, 400.0);
            let graph = SpaceTimeGraph::build_default(&trace);
            for config in [
                EnumerationConfig {
                    k: 25,
                    max_delivered_paths: Some(7),
                    stored_path_limit: 3,
                    enforce_first_preference: true,
                },
                EnumerationConfig {
                    k: 5,
                    max_delivered_paths: Some(2),
                    stored_path_limit: 1,
                    enforce_first_preference: true,
                },
                EnumerationConfig::quick(8).without_first_preference(),
            ] {
                let enumerator = PathEnumerator::new(&graph, config);
                for (src, dst) in [(0u32, 9u32), (5, 2)] {
                    let message = Message::new(nid(src), nid(dst), 0.0);
                    assert_equivalent(&enumerator, &graph, &message, &mut scratch);
                }
            }
        }
    }

    #[test]
    fn arena_matches_reference_on_nonzero_window_start() {
        // Regression companion to the graph-level window-start fix: the two
        // engines must agree on absolute delivery times when the trace does
        // not start at zero.
        let mut reg = NodeRegistry::new();
        for _ in 0..3 {
            reg.add(NodeClass::Mobile);
        }
        let contacts = vec![
            Contact::new(nid(0), nid(1), 1001.0, 1005.0).unwrap(),
            Contact::new(nid(1), nid(2), 1021.0, 1025.0).unwrap(),
        ];
        let trace = ContactTrace::from_contacts(
            "offset-enum",
            reg,
            TimeWindow::new(1000.0, 1060.0),
            contacts,
        )
        .unwrap();
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(10));
        let message = Message::new(nid(0), nid(2), 1000.0);
        let mut scratch = EnumerationScratch::new();
        assert_equivalent(&enumerator, &graph, &message, &mut scratch);
        let result = enumerator.enumerate(&message);
        // The delivery lands at the end of the slot containing the 1-2
        // contact: slot 2 of a window starting at 1000 ends at 1030.
        assert_eq!(result.first_delivery_time(), Some(1030.0));
    }

    // ------------------------------------------------------------------
    // Slot-major batch driver: must be bit-identical to the message-major
    // driver, and must touch each slot of a windowed graph once per batch.
    // ------------------------------------------------------------------

    fn assert_batch_matches_sequential(
        enumerator: &PathEnumerator<'_>,
        messages: &[Message],
        scratches: &mut Vec<EnumerationScratch>,
        scratch: &mut EnumerationScratch,
    ) {
        let batch = enumerator.enumerate_batch(messages, scratches);
        assert_eq!(batch.len(), messages.len());
        for (message, batched) in messages.iter().zip(&batch) {
            let single = enumerator.enumerate_with_scratch(message, scratch);
            assert_eq!(batched.deliveries, single.deliveries, "deliveries differ for {message}");
            assert_eq!(
                batched.sample_paths, single.sample_paths,
                "sample paths differ for {message}"
            );
            assert_eq!(batched.exploded, single.exploded, "explosion flag differs for {message}");
            assert_eq!(
                batched.truncated, single.truncated,
                "truncation flag differs for {message}"
            );
            assert_eq!(
                batched.slots_processed, single.slots_processed,
                "slot count differs for {message}"
            );
        }
    }

    #[test]
    fn batch_matches_sequential_on_random_traces() {
        let mut scratches = Vec::new();
        let mut scratch = EnumerationScratch::new();
        for seed in 200..208u64 {
            // Node counts straddle the 64-node bitmask boundary.
            let nodes = 6 + (seed as usize % 4) * 21;
            let trace = random_trace(seed, nodes, 140, 500.0);
            let graph = SpaceTimeGraph::build_default(&trace);
            for k in [1usize, 6, 24] {
                let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(k));
                // Staggered creation times give every run a different
                // start slot, so the sweep joins runs mid-flight.
                let messages: Vec<Message> = (0..8u32)
                    .map(|i| {
                        Message::new(
                            nid((i * 3) % nodes as u32),
                            nid((i * 5 + 1) % nodes as u32),
                            25.0 * i as f64,
                        )
                    })
                    .filter(|m| m.source != m.destination)
                    .collect();
                assert_batch_matches_sequential(
                    &enumerator,
                    &messages,
                    &mut scratches,
                    &mut scratch,
                );
            }
        }
    }

    #[test]
    fn batch_matches_sequential_with_caps_and_ablation() {
        let mut scratches = Vec::new();
        let mut scratch = EnumerationScratch::new();
        for seed in 300..304u64 {
            let trace = random_trace(seed, 10, 60, 400.0);
            let graph = SpaceTimeGraph::build_default(&trace);
            for config in [
                EnumerationConfig {
                    k: 25,
                    max_delivered_paths: Some(7),
                    stored_path_limit: 3,
                    enforce_first_preference: true,
                },
                EnumerationConfig {
                    k: 5,
                    max_delivered_paths: Some(2),
                    stored_path_limit: 1,
                    enforce_first_preference: true,
                },
                EnumerationConfig::quick(8).without_first_preference(),
            ] {
                let enumerator = PathEnumerator::new(&graph, config);
                let messages: Vec<Message> = vec![
                    Message::new(nid(0), nid(9), 0.0),
                    Message::new(nid(5), nid(2), 0.0),
                    Message::new(nid(3), nid(7), 50.0),
                    Message::new(nid(9), nid(0), 120.0),
                ];
                assert_batch_matches_sequential(
                    &enumerator,
                    &messages,
                    &mut scratches,
                    &mut scratch,
                );
            }
        }
    }

    #[test]
    fn batch_handles_empty_and_singleton_inputs() {
        let trace = trace_from(vec![(0, 1, 1.0, 5.0), (1, 2, 21.0, 25.0)], 3, 60.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(10));
        let mut scratches = Vec::new();
        assert!(enumerator.enumerate_batch(&[], &mut scratches).is_empty());
        assert!(scratches.is_empty());
        let message = Message::new(nid(0), nid(2), 0.0);
        let batch = enumerator.enumerate_batch(std::slice::from_ref(&message), &mut scratches);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].deliveries, enumerator.enumerate(&message).deliveries);
        assert_eq!(scratches.len(), 1);
    }

    #[test]
    fn batched_sweep_reloads_each_slot_once_per_batch() {
        use crate::windowed::{MemorySpill, WindowedSpaceTimeGraph};
        use psn_trace::TraceEventStream;

        // A relay chain spread across many slots: messages toward the chain
        // tail sweep most of the trace before delivering, so message-major
        // enumeration re-walks (and re-loads) the same slots once per
        // message while the slot-major batch walks them once in total.
        let contacts: Vec<(u32, u32, f64, f64)> =
            (0..7u32).map(|i| (i, i + 1, 20.0 * i as f64 + 1.0, 20.0 * i as f64 + 5.0)).collect();
        let trace = trace_from(contacts, 8, 200.0);
        let messages: Vec<Message> = vec![
            Message::new(nid(0), nid(7), 0.0),
            Message::new(nid(1), nid(7), 0.0),
            Message::new(nid(0), nid(6), 0.0),
            Message::new(nid(2), nid(7), 0.0),
            Message::new(nid(0), nid(5), 0.0),
        ];
        let config = EnumerationConfig::quick(10);
        let windowed = |window_slots: usize| {
            WindowedSpaceTimeGraph::stream_with(
                &mut TraceEventStream::new(&trace, 10.0),
                window_slots,
                Box::new(MemorySpill::new()),
                |_, _| {},
            )
            .unwrap()
        };

        // Message-major: each message sweeps the busy prefix on its own.
        let graph_seq = windowed(2);
        let enumerator = PathEnumerator::new(&graph_seq, config.clone());
        let mut scratch = EnumerationScratch::new();
        let sequential: Vec<EnumerationResult> =
            messages.iter().map(|m| enumerator.enumerate_with_scratch(m, &mut scratch)).collect();
        let loads_sequential = graph_seq.spill_loads();

        // Slot-major batch over an identically shaped graph.
        let graph_batch = windowed(2);
        let enumerator = PathEnumerator::new(&graph_batch, config);
        let mut scratches = Vec::new();
        let batched = enumerator.enumerate_batch(&messages, &mut scratches);
        let loads_batched = graph_batch.spill_loads();

        for (single, batch) in sequential.iter().zip(&batched) {
            assert_eq!(single.deliveries, batch.deliveries);
            assert_eq!(single.sample_paths, batch.sample_paths);
            assert_eq!(single.slots_processed, batch.slots_processed);
        }
        // The batch pins every slot at most once, so its reload count is
        // bounded by the number of busy slots; the message-major driver
        // pays that cost nearly once per message.
        let busy = graph_batch.busy_slots().len() as u64;
        assert!(
            loads_batched <= busy,
            "batch reloaded {loads_batched} slots, expected at most {busy}"
        );
        assert!(
            loads_sequential >= 2 * loads_batched,
            "sequential loads {loads_sequential} should dwarf batched loads {loads_batched}"
        );
    }
}
