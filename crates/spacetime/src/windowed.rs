//! Incremental, bounded-memory space-time graph construction.
//!
//! [`SpaceTimeGraph::build`] materializes every slot of the trace before any
//! downstream work starts, so its working set is O(trace). This module is
//! the spacetime half of the streaming pipeline:
//!
//! * [`IncrementalSlotter`] folds slot-ordered [`ContactEvent`]s into sealed
//!   per-slot edge lists, maintaining only the *currently active* contact
//!   multiset between seals — O(active contacts) state;
//! * [`stream_graph`] drains a [`ContactStream`] into a full
//!   [`SpaceTimeGraph`], bit-identical to the materialized builder (the
//!   differential anchor for the incremental path);
//! * [`WindowedSpaceTimeGraph`] keeps a bounded sliding window of hot slots
//!   in memory and spills every sealed busy slot through a [`SlotSpill`]
//!   sink (the `psn-artifact` binary codec in production, an in-memory map
//!   in tests), reloading cold slots on demand — random access with an
//!   O(window) resident bound;
//! * [`GraphRef`] / [`SlotGuard`] / [`SharedGraph`] let every engine run
//!   unchanged against either representation: slot queries go through a
//!   guard hoisted once per slot-loop iteration, and both representations
//!   answer them from the *same* [`Slot`] type, so results are identical by
//!   construction.
//!
//! Spill reload is exact: a slot is stored as its final normalized edge
//! list, and [`Slot::seal`] deterministically rebuilds adjacency, component
//! labels and member tables from it, so a reloaded slot compares equal to
//! the one that was evicted.

use std::collections::{BTreeMap, VecDeque};
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use psn_trace::stream::slot_count;
use psn_trace::{ContactEvent, ContactStream, NodeId, Seconds, StreamError, TimeWindow};

use crate::graph::{Slot, SpaceTimeGraph};

/// Errors raised by a [`SlotSpill`] sink.
#[derive(Debug, Clone, PartialEq)]
pub enum SpillError {
    /// An I/O failure in the spill backend.
    Io(String),
    /// The stored bytes could not be decoded back into a slot.
    Corrupt(String),
    /// A slot was requested that was never spilled.
    Missing(usize),
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::Io(e) => write!(f, "spill I/O error: {e}"),
            SpillError::Corrupt(e) => write!(f, "spilled slot is corrupt: {e}"),
            SpillError::Missing(s) => write!(f, "slot {s} was never spilled"),
        }
    }
}

impl std::error::Error for SpillError {}

/// A sink cold slots spill through. Stores the slot's final normalized edge
/// list; everything else in a [`Slot`] is deterministically rebuilt from it
/// on reload by [`Slot::seal`].
pub trait SlotSpill: Send + Sync + std::fmt::Debug {
    /// Persists the edge list of slot `index`.
    fn store(&self, index: usize, edges: &[(NodeId, NodeId)]) -> Result<(), SpillError>;
    /// Loads the edge list of slot `index` back.
    fn load(&self, index: usize) -> Result<Vec<(NodeId, NodeId)>, SpillError>;
    /// Bytes of reusable encode/decode scratch the backend holds — counted
    /// into [`WindowedSpaceTimeGraph::peak_bytes`] so the streaming
    /// working-set figure includes the spill tier's buffers.
    fn scratch_bytes(&self) -> usize {
        0
    }
}

/// An in-memory spill backend for tests and small runs.
#[derive(Debug, Default)]
pub struct MemorySpill {
    slots: Mutex<BTreeMap<usize, Vec<(NodeId, NodeId)>>>,
}

impl MemorySpill {
    /// Creates an empty in-memory spill.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SlotSpill for MemorySpill {
    fn store(&self, index: usize, edges: &[(NodeId, NodeId)]) -> Result<(), SpillError> {
        let mut slots = self.slots.lock().unwrap_or_else(|poison| poison.into_inner());
        slots.insert(index, edges.to_vec());
        Ok(())
    }

    fn load(&self, index: usize) -> Result<Vec<(NodeId, NodeId)>, SpillError> {
        let slots = self.slots.lock().unwrap_or_else(|poison| poison.into_inner());
        slots.get(&index).cloned().ok_or(SpillError::Missing(index))
    }
}

/// Errors raised while draining a stream into a graph.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamBuildError {
    /// The event source failed or violated its ordering contract.
    Stream(StreamError),
    /// The spill sink failed.
    Spill(SpillError),
}

impl std::fmt::Display for StreamBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamBuildError::Stream(e) => write!(f, "event stream error: {e}"),
            StreamBuildError::Spill(e) => write!(f, "slot spill error: {e}"),
        }
    }
}

impl std::error::Error for StreamBuildError {}

impl From<StreamError> for StreamBuildError {
    fn from(e: StreamError) -> Self {
        StreamBuildError::Stream(e)
    }
}

impl From<SpillError> for StreamBuildError {
    fn from(e: SpillError) -> Self {
        StreamBuildError::Spill(e)
    }
}

/// Folds slot-ordered contact events into sealed per-slot edge lists.
///
/// State between seals is the multiset of currently active contact edges
/// (refcounted, since overlapping contacts of one pair are distinct), so
/// memory is O(active contacts) regardless of trace length. Slots are sealed
/// strictly in ascending order through the `seal` callback; the callback
/// receives the slot index and the slot's raw edge list (one entry per
/// active pair — [`Slot::seal`] normalizes it).
#[derive(Debug)]
pub struct IncrementalSlotter {
    num_slots: usize,
    next_slot: usize,
    active: BTreeMap<(u32, u32), u32>,
}

impl IncrementalSlotter {
    /// A slotter over `num_slots` slots (see
    /// [`psn_trace::stream::slot_count`]).
    pub fn new(num_slots: usize) -> Self {
        Self { num_slots, next_slot: 0, active: BTreeMap::new() }
    }

    /// The multiset of currently active edges, one entry per unique pair.
    fn snapshot(&self) -> Vec<(NodeId, NodeId)> {
        self.active.keys().map(|&(a, b)| (NodeId(a), NodeId(b))).collect()
    }

    fn seal_through<E>(
        &mut self,
        upto: usize,
        seal: &mut impl FnMut(usize, Vec<(NodeId, NodeId)>) -> Result<(), E>,
    ) -> Result<(), E> {
        let upto = upto.min(self.num_slots);
        while self.next_slot < upto {
            let edges = self.snapshot();
            seal(self.next_slot, edges)?;
            self.next_slot += 1;
        }
        Ok(())
    }

    /// Applies one event, sealing every slot strictly before the event's
    /// slot first. Events must arrive in non-decreasing slot order;
    /// regressions are rejected with [`StreamError::SlotRegression`] wrapped
    /// in [`StreamBuildError::Stream`].
    pub fn apply<E: From<StreamError>>(
        &mut self,
        event: &ContactEvent,
        seal: &mut impl FnMut(usize, Vec<(NodeId, NodeId)>) -> Result<(), E>,
    ) -> Result<(), E> {
        let slot = event.slot();
        if slot < self.next_slot {
            return Err(StreamError::SlotRegression { slot, expected_min: self.next_slot }.into());
        }
        self.seal_through(slot, seal)?;
        match *event {
            ContactEvent::Up { a, b, .. } => {
                let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
                *self.active.entry(key).or_insert(0) += 1;
            }
            ContactEvent::Down { a, b, .. } => {
                let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
                if let Some(count) = self.active.get_mut(&key) {
                    *count -= 1;
                    if *count == 0 {
                        self.active.remove(&key);
                    }
                }
            }
        }
        Ok(())
    }

    /// Seals every remaining slot through the end of the window.
    pub fn finish<E>(
        mut self,
        seal: &mut impl FnMut(usize, Vec<(NodeId, NodeId)>) -> Result<(), E>,
    ) -> Result<(), E> {
        self.seal_through(self.num_slots, seal)
    }

    /// Approximate bytes held by the active-contact multiset.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.active.len() * std::mem::size_of::<((u32, u32), u32)>()
    }
}

/// Drains `stream` into a fully materialized [`SpaceTimeGraph`].
///
/// The result is bit-identical to [`SpaceTimeGraph::build`] on the
/// materialized trace — the property the streaming differential tests pin.
pub fn stream_graph<S: ContactStream>(stream: &mut S) -> Result<SpaceTimeGraph, StreamError> {
    let node_count = stream.node_count();
    let window = stream.window();
    let delta = stream.delta();
    let num_slots = slot_count(window, delta);
    let mut slots: Vec<Slot> = Vec::with_capacity(num_slots);
    let mut slotter = IncrementalSlotter::new(num_slots);
    let mut seal = |_s: usize, edges: Vec<(NodeId, NodeId)>| -> Result<(), StreamError> {
        slots.push(Slot::seal(node_count, edges));
        Ok(())
    };
    while let Some(event) = stream.next_event()? {
        slotter.apply(&event, &mut seal)?;
    }
    slotter.finish(&mut seal)?;
    Ok(SpaceTimeGraph::from_sealed_slots(delta, node_count, slots, window.start, window.end))
}

/// Hot-slot cache of a windowed graph: FIFO insertion order, bounded count.
///
/// Spilling is **lazy**: a sealed slot is written to the spill sink only
/// when it is about to be evicted (`spilled` records which slots have been
/// written, so a slot evicted twice is stored once). Slots that never leave
/// the hot window are never stored at all — the skip-spill path that makes
/// small graphs and covered sweeps spill-free.
#[derive(Debug, Default)]
struct HotSet {
    map: BTreeMap<usize, Arc<Slot>>,
    order: VecDeque<usize>,
    resident_bytes: usize,
    /// Per-slot "already persisted" flags, indexed by slot number.
    spilled: Vec<bool>,
}

impl HotSet {
    /// Evicts the FIFO (or, under a plan, LIFO) victim, persisting it first
    /// if it was never spilled. Returns the number of spill stores made.
    fn evict_one(&mut self, spill: &dyn SlotSpill, from_back: bool) -> Result<u64, SpillError> {
        let victim = if from_back { self.order.pop_back() } else { self.order.pop_front() };
        let Some(old) = victim else { return Ok(0) };
        let Some(evicted) = self.map.remove(&old) else { return Ok(0) };
        let mut stores = 0;
        if !self.spilled[old] {
            spill.store(old, evicted.edges())?;
            self.spilled[old] = true;
            stores = 1;
        }
        self.resident_bytes -= evicted.approx_bytes();
        Ok(stores)
    }
}

/// A space-time graph whose resident set is bounded by a slot window.
///
/// Built in one pass over a [`ContactStream`]; at most `window_slots` busy
/// slots stay hot in memory and a sealed busy slot is written to the
/// [`SlotSpill`] sink **lazily, on first eviction** — a slot the hot window
/// covers for the graph's whole lifetime is never stored, and a slot
/// re-evicted after a reload is never stored twice. Queries for cold slots
/// reload them from the spill (bit-exact, see [`Slot::seal`]); queries for
/// contact-free slots share one empty slot. All slot queries go through
/// [`WindowedSpaceTimeGraph::slot`], which returns an owned `Arc<Slot>`
/// guard.
#[derive(Debug)]
pub struct WindowedSpaceTimeGraph {
    delta: Seconds,
    node_count: usize,
    num_slots: usize,
    window_start: Seconds,
    window_end: Seconds,
    busy_slots: Vec<usize>,
    total_edges: usize,
    window_slots: usize,
    empty: Arc<Slot>,
    spill: Box<dyn SlotSpill>,
    hot: Mutex<HotSet>,
    peak_bytes: AtomicUsize,
    spill_stores: AtomicU64,
    spill_loads: AtomicU64,
    /// A sequential (ascending-sweep) access plan is active — see
    /// [`WindowedSpaceTimeGraph::advise_sequential`].
    plan_active: AtomicBool,
    avoided_reloads: AtomicU64,
}

impl WindowedSpaceTimeGraph {
    /// Builds the windowed graph by draining `stream`, keeping at most
    /// `window_slots` busy slots hot (clamped to at least 1) and spilling
    /// evicted busy slots through `spill`.
    pub fn stream<S: ContactStream>(
        stream: &mut S,
        window_slots: usize,
        spill: Box<dyn SlotSpill>,
    ) -> Result<Self, StreamBuildError> {
        Self::stream_with(stream, window_slots, spill, |_, _| {})
    }

    /// Like [`WindowedSpaceTimeGraph::stream`], additionally invoking `tap`
    /// on every sealed *busy* slot, in ascending slot order, before it can
    /// be evicted — the hook the incremental history-timeline builder rides
    /// so graph and timeline are built in the same single pass.
    pub fn stream_with<S: ContactStream>(
        stream: &mut S,
        window_slots: usize,
        spill: Box<dyn SlotSpill>,
        mut tap: impl FnMut(usize, &Slot),
    ) -> Result<Self, StreamBuildError> {
        let node_count = stream.node_count();
        let window = stream.window();
        let delta = stream.delta();
        let num_slots = slot_count(window, delta);
        let window_slots = window_slots.max(1);
        let empty = Arc::new(Slot::empty(node_count));

        let mut slotter = IncrementalSlotter::new(num_slots);
        let mut busy_slots: Vec<usize> = Vec::new();
        let mut total_edges = 0usize;
        let mut hot = HotSet { spilled: vec![false; num_slots], ..HotSet::default() };
        let mut spill_stores = 0u64;
        let mut peak = 0usize;
        let base_bytes = std::mem::size_of::<Self>()
            + empty.approx_bytes()
            + num_slots * std::mem::size_of::<bool>();

        {
            let mut seal =
                |s: usize, edges: Vec<(NodeId, NodeId)>| -> Result<(), StreamBuildError> {
                    if edges.is_empty() {
                        return Ok(());
                    }
                    let slot = Arc::new(Slot::seal(node_count, edges));
                    tap(s, &slot);
                    busy_slots.push(s);
                    total_edges += slot.edge_count();
                    hot.resident_bytes += slot.approx_bytes();
                    hot.map.insert(s, slot);
                    hot.order.push_back(s);
                    // Lazy spill: slots are persisted at eviction, not at
                    // seal, so slots that stay hot for the graph's whole
                    // life are never written at all.
                    while hot.map.len() > window_slots {
                        spill_stores += hot.evict_one(spill.as_ref(), false)?;
                    }
                    let working = base_bytes
                        + hot.resident_bytes
                        + busy_slots.len() * std::mem::size_of::<usize>()
                        + spill.scratch_bytes();
                    peak = peak.max(working);
                    Ok(())
                };
            while let Some(event) = stream.next_event().map_err(StreamBuildError::Stream)? {
                slotter.apply(&event, &mut seal)?;
            }
            slotter.finish(&mut seal)?;
        }
        let working = base_bytes
            + hot.resident_bytes
            + busy_slots.len() * std::mem::size_of::<usize>()
            + spill.scratch_bytes();
        peak = peak.max(working);

        Ok(Self {
            delta,
            node_count,
            num_slots,
            window_start: window.start,
            window_end: window.end,
            busy_slots,
            total_edges,
            window_slots,
            empty,
            spill,
            hot: Mutex::new(hot),
            peak_bytes: AtomicUsize::new(peak),
            spill_stores: AtomicU64::new(spill_stores),
            spill_loads: AtomicU64::new(0),
            plan_active: AtomicBool::new(false),
            avoided_reloads: AtomicU64::new(0),
        })
    }

    /// The discretization step in seconds.
    pub fn delta(&self) -> Seconds {
        self.delta
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of time slots.
    pub fn slot_count(&self) -> usize {
        self.num_slots
    }

    /// Start of the observation window in seconds.
    pub fn window_start(&self) -> Seconds {
        self.window_start
    }

    /// End of the observation window in seconds.
    pub fn window_end(&self) -> Seconds {
        self.window_end
    }

    /// The observation window.
    pub fn window(&self) -> TimeWindow {
        TimeWindow::new(self.window_start, self.window_end)
    }

    /// The hot-window capacity in busy slots.
    pub fn window_slots(&self) -> usize {
        self.window_slots
    }

    /// The slot index containing absolute time `t`, clamped — same
    /// convention as [`SpaceTimeGraph::slot_of_time`].
    pub fn slot_of_time(&self, t: Seconds) -> usize {
        let rel = t - self.window_start;
        if rel <= 0.0 {
            return 0;
        }
        ((rel / self.delta).floor() as usize).min(self.num_slots - 1)
    }

    /// The absolute time at which slot `s` ends — same convention as
    /// [`SpaceTimeGraph::slot_end_time`].
    pub fn slot_end_time(&self, s: usize) -> Seconds {
        self.window_start + (s as f64 + 1.0) * self.delta
    }

    /// Indices of slots with at least one contact edge, ascending.
    pub fn busy_slots(&self) -> &[usize] {
        &self.busy_slots
    }

    /// Total number of (contact, slot) incidences.
    pub fn total_edges(&self) -> usize {
        self.total_edges
    }

    /// The slot `s`, hot or reloaded from spill. Contact-free slots share
    /// one empty instance.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range or the spill backend fails — engines
    /// run slot queries in hot loops with no error channel, and the study
    /// layer already isolates per-cell panics.
    pub fn slot(&self, s: usize) -> Arc<Slot> {
        assert!(s < self.num_slots, "slot {s} out of range ({} slots)", self.num_slots);
        let Ok(busy_idx) = self.busy_slots.binary_search(&s) else {
            return Arc::clone(&self.empty);
        };
        // relaxed: advisory access-plan flag; the hot-set mutex orders the data it guards.
        let plan = self.plan_active.load(Ordering::Relaxed);
        let mut hot = self.hot.lock().unwrap_or_else(|poison| poison.into_inner());
        if let Some(slot) = hot.map.get(&s) {
            if plan {
                // Under the plan-less FIFO policy a repeated ascending
                // sweep evicts every slot before it comes round again, so a
                // plan-active hot hit is a reload the plan avoided.
                // relaxed: monotonic stats counter, read only for reporting; orders no data.
                self.avoided_reloads.fetch_add(1, Ordering::Relaxed);
            }
            return Arc::clone(slot);
        }
        let reload = |s: usize| -> Arc<Slot> {
            let edges = match self.spill.load(s) {
                Ok(edges) => edges,
                Err(e) => panic!("reloading spilled slot {s} failed: {e}"),
            };
            // relaxed: monotonic stats counter, read only for reporting; orders no data.
            self.spill_loads.fetch_add(1, Ordering::Relaxed);
            Arc::new(Slot::seal(self.node_count, edges))
        };
        let slot = reload(s);
        hot.resident_bytes += slot.approx_bytes();
        hot.map.insert(s, Arc::clone(&slot));
        hot.order.push_back(s);
        if plan {
            // Prefetch subsequent busy slots — the order an ascending
            // sweep will ask for them — into whatever capacity is free, so
            // the sweep's next queries are answered hot.
            for &next in &self.busy_slots[busy_idx + 1..] {
                if hot.map.len() >= self.window_slots {
                    break;
                }
                if hot.map.contains_key(&next) {
                    continue;
                }
                let prefetched = reload(next);
                hot.resident_bytes += prefetched.approx_bytes();
                hot.map.insert(next, prefetched);
                hot.order.push_back(next);
            }
        }
        while hot.map.len() > self.window_slots {
            // FIFO suits one-shot scans; under a sequential plan the cache
            // instead keeps its oldest entries (the sweep's prefix) and
            // drops the newest, so each sweep restart begins with hot
            // hits — the optimal policy for cyclic ascending scans.
            // Eviction consults the spilled set: a slot already persisted
            // (every reloaded slot is) costs zero extra stores, so steady
            // state sweeps churn the hot set without touching the sink.
            match hot.evict_one(self.spill.as_ref(), plan) {
                // relaxed: monotonic stats counter, read only for reporting; orders no data.
                Ok(stores) => {
                    self.spill_stores.fetch_add(stores, Ordering::Relaxed);
                }
                Err(e) => panic!("evicting slot to spill failed: {e}"),
            }
        }
        let working = std::mem::size_of::<Self>()
            + self.empty.approx_bytes()
            + self.busy_slots.len() * std::mem::size_of::<usize>()
            + self.num_slots * std::mem::size_of::<bool>()
            + hot.resident_bytes
            + self.spill.scratch_bytes();
        // relaxed: high-water-mark stats; fetch_max is atomic and the value is reporting-only.
        self.peak_bytes.fetch_max(working, Ordering::Relaxed);
        slot
    }

    /// Declares (or retracts) a **sequential access plan**: the caller is
    /// about to scan busy slots in ascending order, restarting from the
    /// bottom repeatedly — the enumerator's per-message sweep pattern,
    /// which thrashes the FIFO policy (each restart finds the cache full
    /// of the *previous* sweep's tail and misses every slot). While a plan
    /// is active the cache keeps the sweep's prefix resident, prefetches
    /// forward in sweep order, and counts hot hits as
    /// [`WindowedSpaceTimeGraph::avoided_reloads`].
    ///
    /// Purely a performance hint — slot contents are identical either way.
    pub fn advise_sequential(&self, active: bool) {
        // relaxed: advisory access-plan flag; see `slot`.
        self.plan_active.store(active, Ordering::Relaxed);
    }

    /// Number of slot queries served hot *because* a sequential plan was
    /// active — reloads avoided relative to the plan-less FIFO steady
    /// state, reported alongside [`WindowedSpaceTimeGraph::spill_loads`].
    pub fn avoided_reloads(&self) -> u64 {
        // relaxed: monotonic stats counter, read only for reporting; orders no data.
        self.avoided_reloads.load(Ordering::Relaxed)
    }

    /// Approximate *current* resident bytes: metadata, hot slots, and the
    /// spill backend's reusable scratch buffers.
    pub fn approx_bytes(&self) -> usize {
        let hot = self.hot.lock().unwrap_or_else(|poison| poison.into_inner());
        std::mem::size_of::<Self>()
            + self.empty.approx_bytes()
            + self.busy_slots.len() * std::mem::size_of::<usize>()
            + self.num_slots * std::mem::size_of::<bool>()
            + hot.resident_bytes
            + self.spill.scratch_bytes()
    }

    /// Peak resident bytes observed over build and queries so far.
    pub fn peak_bytes(&self) -> usize {
        // relaxed: monotonic stats counter, read only for reporting; orders no data.
        self.peak_bytes.load(Ordering::Relaxed)
    }

    /// Number of slot records written to the spill sink. Spilling is lazy
    /// (store on first eviction), so this stays at zero while the hot
    /// window covers every busy slot and never exceeds the busy-slot count.
    pub fn spill_stores(&self) -> u64 {
        // relaxed: monotonic stats counter, read only for reporting; orders no data.
        self.spill_stores.load(Ordering::Relaxed)
    }

    /// Number of cold-slot reloads served by the spill sink.
    pub fn spill_loads(&self) -> u64 {
        // relaxed: monotonic stats counter, read only for reporting; orders no data.
        self.spill_loads.load(Ordering::Relaxed)
    }
}

/// A borrowed slot view: either a direct borrow from a materialized graph
/// or a shared handle from a windowed one. Dereferences to [`Slot`], so
/// engine slot-loops are representation-agnostic.
#[derive(Debug)]
pub enum SlotGuard<'a> {
    /// Borrowed from a [`SpaceTimeGraph`].
    Borrowed(&'a Slot),
    /// Shared handle from a [`WindowedSpaceTimeGraph`].
    Shared(Arc<Slot>),
}

impl Deref for SlotGuard<'_> {
    type Target = Slot;

    fn deref(&self) -> &Slot {
        match self {
            SlotGuard::Borrowed(slot) => slot,
            SlotGuard::Shared(slot) => slot,
        }
    }
}

/// A by-reference view over either graph representation. `Copy`, so engines
/// store it directly; construct it with `From`/`Into` from `&SpaceTimeGraph`
/// or `&WindowedSpaceTimeGraph` (existing `&graph` call sites compile
/// unchanged through the `impl Into<GraphRef>` parameters).
#[derive(Debug, Clone, Copy)]
pub enum GraphRef<'a> {
    /// A fully materialized graph.
    Full(&'a SpaceTimeGraph),
    /// A windowed, spill-backed graph.
    Windowed(&'a WindowedSpaceTimeGraph),
}

impl<'a> From<&'a SpaceTimeGraph> for GraphRef<'a> {
    fn from(graph: &'a SpaceTimeGraph) -> Self {
        GraphRef::Full(graph)
    }
}

impl<'a> From<&'a WindowedSpaceTimeGraph> for GraphRef<'a> {
    fn from(graph: &'a WindowedSpaceTimeGraph) -> Self {
        GraphRef::Windowed(graph)
    }
}

impl<'a> From<&'a SharedGraph> for GraphRef<'a> {
    fn from(graph: &'a SharedGraph) -> Self {
        graph.as_graph_ref()
    }
}

impl<'a> GraphRef<'a> {
    /// The discretization step in seconds.
    pub fn delta(&self) -> Seconds {
        match self {
            GraphRef::Full(g) => g.delta(),
            GraphRef::Windowed(g) => g.delta(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        match self {
            GraphRef::Full(g) => g.node_count(),
            GraphRef::Windowed(g) => g.node_count(),
        }
    }

    /// Number of time slots.
    pub fn slot_count(&self) -> usize {
        match self {
            GraphRef::Full(g) => g.slot_count(),
            GraphRef::Windowed(g) => g.slot_count(),
        }
    }

    /// Start of the observation window in seconds.
    pub fn window_start(&self) -> Seconds {
        match self {
            GraphRef::Full(g) => g.window_start(),
            GraphRef::Windowed(g) => g.window_start(),
        }
    }

    /// End of the observation window in seconds.
    pub fn window_end(&self) -> Seconds {
        match self {
            GraphRef::Full(g) => g.window_end(),
            GraphRef::Windowed(g) => g.window_end(),
        }
    }

    /// The slot index containing absolute time `t`, clamped.
    pub fn slot_of_time(&self, t: Seconds) -> usize {
        match self {
            GraphRef::Full(g) => g.slot_of_time(t),
            GraphRef::Windowed(g) => g.slot_of_time(t),
        }
    }

    /// The absolute time at which slot `s` ends.
    pub fn slot_end_time(&self, s: usize) -> Seconds {
        match self {
            GraphRef::Full(g) => g.slot_end_time(s),
            GraphRef::Windowed(g) => g.slot_end_time(s),
        }
    }

    /// Indices of slots with at least one contact edge, ascending.
    pub fn busy_slots(&self) -> &'a [usize] {
        match self {
            GraphRef::Full(g) => g.busy_slots(),
            GraphRef::Windowed(g) => g.busy_slots(),
        }
    }

    /// Total number of (contact, slot) incidences.
    pub fn total_edges(&self) -> usize {
        match self {
            GraphRef::Full(g) => g.total_edges(),
            GraphRef::Windowed(g) => g.total_edges(),
        }
    }

    /// The slot `s`, as a representation-agnostic guard. Hoist one guard
    /// per slot-loop iteration; on the windowed representation each call
    /// may reload a cold slot.
    pub fn slot(&self, s: usize) -> SlotGuard<'a> {
        match self {
            GraphRef::Full(g) => SlotGuard::Borrowed(g.slot(s)),
            GraphRef::Windowed(g) => SlotGuard::Shared(g.slot(s)),
        }
    }

    /// Declares (or retracts) a sequential access plan — see
    /// [`WindowedSpaceTimeGraph::advise_sequential`]. A no-op on the fully
    /// materialized representation, so sweep drivers call it
    /// unconditionally.
    pub fn advise_sequential(&self, active: bool) {
        if let GraphRef::Windowed(g) = self {
            g.advise_sequential(active);
        }
    }
}

/// An owned, clonable handle over either graph representation — what
/// long-lived holders (the forwarding simulator, the artifact layer) store
/// instead of `Arc<SpaceTimeGraph>`.
#[derive(Debug, Clone)]
pub enum SharedGraph {
    /// A fully materialized graph.
    Full(Arc<SpaceTimeGraph>),
    /// A windowed, spill-backed graph.
    Windowed(Arc<WindowedSpaceTimeGraph>),
}

impl From<Arc<SpaceTimeGraph>> for SharedGraph {
    fn from(graph: Arc<SpaceTimeGraph>) -> Self {
        SharedGraph::Full(graph)
    }
}

impl From<Arc<WindowedSpaceTimeGraph>> for SharedGraph {
    fn from(graph: Arc<WindowedSpaceTimeGraph>) -> Self {
        SharedGraph::Windowed(graph)
    }
}

impl SharedGraph {
    /// Borrows the by-reference view.
    pub fn as_graph_ref(&self) -> GraphRef<'_> {
        match self {
            SharedGraph::Full(graph) => GraphRef::Full(graph),
            SharedGraph::Windowed(graph) => GraphRef::Windowed(graph),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_trace::contact::Contact;
    use psn_trace::node::{NodeClass, NodeRegistry};
    use psn_trace::trace::ContactTrace;
    use psn_trace::TraceEventStream;

    fn registry(n: usize) -> NodeRegistry {
        let mut r = NodeRegistry::new();
        for _ in 0..n {
            r.add(NodeClass::Mobile);
        }
        r
    }

    fn contact(a: u32, b: u32, s: f64, e: f64) -> Contact {
        Contact::new(NodeId(a), NodeId(b), s, e).unwrap()
    }

    fn sample_trace() -> ContactTrace {
        ContactTrace::from_contacts(
            "sample",
            registry(6),
            TimeWindow::new(0.0, 200.0),
            vec![
                contact(0, 1, 5.0, 35.0),
                contact(2, 3, 12.0, 13.0),
                contact(1, 2, 41.0, 44.0),
                contact(4, 5, 41.5, 95.0),
                contact(0, 4, 120.0, 121.0),
                contact(0, 1, 122.0, 128.0),
                contact(3, 5, 186.0, 199.0),
            ],
        )
        .unwrap()
    }

    fn graphs_equal(a: &SpaceTimeGraph, b: &SpaceTimeGraph) -> bool {
        if a.slot_count() != b.slot_count()
            || a.node_count() != b.node_count()
            || a.busy_slots() != b.busy_slots()
        {
            return false;
        }
        (0..a.slot_count()).all(|s| a.slot(s) == b.slot(s))
    }

    #[test]
    fn stream_graph_matches_materialized_build() {
        let trace = sample_trace();
        let materialized = SpaceTimeGraph::build_default(&trace);
        let streamed = stream_graph(&mut TraceEventStream::new(&trace, 10.0)).unwrap();
        assert!(graphs_equal(&materialized, &streamed));
        assert_eq!(materialized.total_edges(), streamed.total_edges());
    }

    #[test]
    fn stream_graph_matches_on_nonzero_window_start() {
        let trace = ContactTrace::from_contacts(
            "offset",
            registry(3),
            TimeWindow::new(500.0, 620.0),
            vec![
                contact(0, 1, 505.0, 535.0),
                contact(1, 2, 562.0, 563.0),
                contact(0, 2, 610.0, 620.0),
            ],
        )
        .unwrap();
        let materialized = SpaceTimeGraph::build_default(&trace);
        let streamed = stream_graph(&mut TraceEventStream::new(&trace, 10.0)).unwrap();
        assert!(graphs_equal(&materialized, &streamed));
    }

    #[test]
    fn stream_graph_matches_on_empty_trace() {
        let trace = ContactTrace::new("empty", registry(4), TimeWindow::new(0.0, 55.0));
        let materialized = SpaceTimeGraph::build_default(&trace);
        let streamed = stream_graph(&mut TraceEventStream::new(&trace, 10.0)).unwrap();
        assert!(graphs_equal(&materialized, &streamed));
        assert_eq!(streamed.slot_count(), 6);
    }

    #[test]
    fn windowed_graph_answers_every_slot_query_identically() {
        let trace = sample_trace();
        let full = SpaceTimeGraph::build_default(&trace);
        let windowed = WindowedSpaceTimeGraph::stream(
            &mut TraceEventStream::new(&trace, 10.0),
            2,
            Box::new(MemorySpill::new()),
        )
        .unwrap();
        assert_eq!(windowed.slot_count(), full.slot_count());
        assert_eq!(windowed.busy_slots(), full.busy_slots());
        assert_eq!(windowed.total_edges(), full.total_edges());
        // Every slot — hot, spilled, or empty — answers identically, in
        // both a forward and a backward scan (the backward scan hits spill
        // reloads for everything outside the final window).
        for s in (0..full.slot_count()).chain((0..full.slot_count()).rev()) {
            assert_eq!(&*windowed.slot(s), full.slot(s), "slot {s}");
        }
        assert!(windowed.spill_loads() > 0, "a 2-slot window must reload cold slots");
    }

    #[test]
    fn windowed_graph_bounds_hot_slots_and_tracks_peak() {
        let trace = sample_trace();
        let windowed = WindowedSpaceTimeGraph::stream(
            &mut TraceEventStream::new(&trace, 10.0),
            1,
            Box::new(MemorySpill::new()),
        )
        .unwrap();
        let resident = windowed.approx_bytes();
        assert!(windowed.peak_bytes() >= resident);
        // Lazy spill: every busy slot except the one still hot was evicted
        // (and therefore stored) during the build.
        assert_eq!(windowed.spill_stores(), windowed.busy_slots().len() as u64 - 1);
        // With a 1-slot window the resident set holds at most one busy slot.
        let one_slot_bound = std::mem::size_of::<WindowedSpaceTimeGraph>()
            + 2 * windowed.slot(0).approx_bytes() * 4
            + 1024;
        assert!(resident < one_slot_bound, "resident {resident} vs bound {one_slot_bound}");
    }

    #[test]
    fn hot_window_covering_all_busy_slots_never_spills() {
        let trace = sample_trace();
        let windowed = WindowedSpaceTimeGraph::stream(
            &mut TraceEventStream::new(&trace, 10.0),
            64,
            Box::new(MemorySpill::new()),
        )
        .unwrap();
        let full = SpaceTimeGraph::build_default(&trace);
        // Repeated full scans in both directions: everything answers hot.
        for s in (0..windowed.slot_count()).chain((0..windowed.slot_count()).rev()) {
            assert_eq!(&*windowed.slot(s), full.slot(s), "slot {s}");
        }
        assert_eq!(windowed.spill_stores(), 0, "skip-spill: nothing was ever evicted");
        assert_eq!(windowed.spill_loads(), 0);
    }

    #[test]
    fn re_evicted_slots_are_stored_exactly_once() {
        let trace = sample_trace();
        let windowed = WindowedSpaceTimeGraph::stream(
            &mut TraceEventStream::new(&trace, 10.0),
            2,
            Box::new(MemorySpill::new()),
        )
        .unwrap();
        let busy = windowed.busy_slots().len() as u64;
        assert_eq!(windowed.spill_stores(), busy - 2, "build evicts all but the hot window");
        // Churn the hot set with repeated ascending sweeps. The two
        // residual build slots get stored on their first eviction; every
        // other eviction is of an already-spilled reload, so the store
        // count saturates at the busy-slot count and stays there.
        for _ in 0..3 {
            for s in 0..windowed.slot_count() {
                windowed.slot(s);
            }
        }
        assert_eq!(windowed.spill_stores(), busy);
        let loads_before = windowed.spill_loads();
        windowed.advise_sequential(true);
        for _ in 0..3 {
            for s in 0..windowed.slot_count() {
                windowed.slot(s);
            }
        }
        windowed.advise_sequential(false);
        assert_eq!(
            windowed.spill_stores(),
            busy,
            "zero extra spill stores under a sequential access plan"
        );
        assert!(windowed.spill_loads() > loads_before, "cold reloads still happen");
    }

    /// A spill that reports a large reusable scratch buffer, for the
    /// accounting test below.
    #[derive(Debug, Default)]
    struct ScratchySpill {
        inner: MemorySpill,
    }

    impl SlotSpill for ScratchySpill {
        fn store(&self, index: usize, edges: &[(NodeId, NodeId)]) -> Result<(), SpillError> {
            self.inner.store(index, edges)
        }

        fn load(&self, index: usize) -> Result<Vec<(NodeId, NodeId)>, SpillError> {
            self.inner.load(index)
        }

        fn scratch_bytes(&self) -> usize {
            1 << 20
        }
    }

    #[test]
    fn peak_bytes_includes_spill_scratch_buffers() {
        let trace = sample_trace();
        let windowed = WindowedSpaceTimeGraph::stream(
            &mut TraceEventStream::new(&trace, 10.0),
            2,
            Box::new(ScratchySpill::default()),
        )
        .unwrap();
        assert!(
            windowed.peak_bytes() >= 1 << 20,
            "peak {} must count the spill scratch",
            windowed.peak_bytes()
        );
        assert!(windowed.approx_bytes() >= 1 << 20);
    }

    #[test]
    fn sequential_plan_avoids_reloads_on_repeated_sweeps() {
        // The enumerator's access pattern: full ascending sweeps over the
        // busy slots, restarted once per message. Under plain FIFO every
        // sweep after the first misses everything; with the plan active
        // the retained prefix answers hot.
        let sweeps = 4usize;
        let make = || {
            WindowedSpaceTimeGraph::stream(
                &mut TraceEventStream::new(&sample_trace(), 10.0),
                2,
                Box::new(MemorySpill::new()),
            )
            .unwrap()
        };
        let full = SpaceTimeGraph::build_default(&sample_trace());

        let plain = make();
        for _ in 0..sweeps {
            for s in 0..plain.slot_count() {
                assert_eq!(&*plain.slot(s), full.slot(s));
            }
        }
        assert_eq!(plain.avoided_reloads(), 0, "no plan, no avoided reloads");

        let planned = make();
        planned.advise_sequential(true);
        for _ in 0..sweeps {
            for s in 0..planned.slot_count() {
                // Contents are identical with the plan active — it is a
                // caching hint, not a semantic change.
                assert_eq!(&*planned.slot(s), full.slot(s));
            }
        }
        planned.advise_sequential(false);
        assert!(
            planned.spill_loads() < plain.spill_loads(),
            "plan loads {} vs plain loads {}",
            planned.spill_loads(),
            plain.spill_loads()
        );
        assert!(planned.avoided_reloads() > 0);
    }

    #[test]
    fn stream_with_taps_busy_slots_in_order() {
        let trace = sample_trace();
        let mut tapped = Vec::new();
        let windowed = WindowedSpaceTimeGraph::stream_with(
            &mut TraceEventStream::new(&trace, 10.0),
            2,
            Box::new(MemorySpill::new()),
            |s, slot| tapped.push((s, slot.edge_count())),
        )
        .unwrap();
        let expected: Vec<(usize, usize)> =
            windowed.busy_slots().iter().map(|&s| (s, windowed.slot(s).edge_count())).collect();
        assert_eq!(tapped, expected);
    }

    #[test]
    fn graph_ref_is_uniform_over_both_representations() {
        let trace = sample_trace();
        let full = SpaceTimeGraph::build_default(&trace);
        let windowed = WindowedSpaceTimeGraph::stream(
            &mut TraceEventStream::new(&trace, 10.0),
            3,
            Box::new(MemorySpill::new()),
        )
        .unwrap();
        let refs: [GraphRef<'_>; 2] = [(&full).into(), (&windowed).into()];
        for r in refs {
            assert_eq!(r.slot_count(), full.slot_count());
            assert_eq!(r.busy_slots(), full.busy_slots());
            assert_eq!(r.slot_of_time(41.0), 4);
            assert_eq!(r.slot_end_time(0), 10.0);
            let slot = r.slot(4);
            assert!(slot.has_contacts(NodeId(1)));
            assert_eq!(slot.edges(), full.slot(4).edges());
        }
        let shared: SharedGraph = Arc::new(full.clone()).into();
        assert_eq!(shared.as_graph_ref().slot_count(), full.slot_count());
        let shared_windowed: SharedGraph = Arc::new(windowed).into();
        assert_eq!(shared_windowed.as_graph_ref().total_edges(), full.total_edges());
    }

    #[test]
    fn slot_regression_is_rejected() {
        let mut slotter = IncrementalSlotter::new(10);
        let mut seal =
            |_s: usize, _e: Vec<(NodeId, NodeId)>| -> Result<(), StreamBuildError> { Ok(()) };
        let up = ContactEvent::Up {
            slot: 5,
            last_slot: 5,
            a: NodeId(0),
            b: NodeId(1),
            start: 50.0,
            end: 55.0,
        };
        slotter.apply(&up, &mut seal).unwrap();
        let stale = ContactEvent::Up {
            slot: 2,
            last_slot: 2,
            a: NodeId(0),
            b: NodeId(1),
            start: 20.0,
            end: 25.0,
        };
        assert!(matches!(
            slotter.apply(&stale, &mut seal),
            Err(StreamBuildError::Stream(StreamError::SlotRegression { slot: 2, expected_min: 5 }))
        ));
    }

    #[test]
    fn missing_spill_slot_reports_missing() {
        let spill = MemorySpill::new();
        assert_eq!(spill.load(3), Err(SpillError::Missing(3)));
        spill.store(3, &[(NodeId(0), NodeId(1))]).unwrap();
        assert_eq!(spill.load(3).unwrap(), vec![(NodeId(0), NodeId(1))]);
    }
}
