//! The time-respecting path model.
//!
//! A path is a sequence of hops `((x₁, t₁), (x₂, t₂), …, (xₖ, tₖ))` with
//! non-decreasing times, where each consecutive pair of nodes was in contact
//! at the later hop's time (paper §4). The first hop is the message source
//! at its creation time; the last hop is wherever the message currently is
//! (the destination, for a delivered path).

use serde::{Deserialize, Serialize};

use psn_trace::{NodeId, Seconds};

/// One hop of a path: a node holding the message from time `time` onwards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hop {
    /// The node that received the message at this hop.
    pub node: NodeId,
    /// The time the node received the message (slot end time for enumerated
    /// paths).
    pub time: Seconds,
}

/// A time-respecting path through the space-time graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Path {
    hops: Vec<Hop>,
}

impl Path {
    /// Creates a path consisting only of the source hop.
    pub fn source(node: NodeId, time: Seconds) -> Self {
        Self { hops: vec![Hop { node, time }] }
    }

    /// Creates a path from an explicit hop sequence.
    ///
    /// # Panics
    ///
    /// Panics if the hop list is empty or times decrease — these are
    /// construction bugs, not runtime conditions.
    pub fn from_hops(hops: Vec<Hop>) -> Self {
        assert!(!hops.is_empty(), "a path has at least the source hop");
        for w in hops.windows(2) {
            assert!(w[1].time >= w[0].time, "hop times must be non-decreasing");
        }
        Self { hops }
    }

    /// The hop sequence.
    pub fn hops(&self) -> &[Hop] {
        &self.hops
    }

    /// Number of hops (tuples) in the path; the paper's notion of path
    /// length.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// A path always has at least the source hop.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of message transmissions (hops minus one).
    pub fn relay_count(&self) -> usize {
        self.hops.len() - 1
    }

    /// The source hop.
    pub fn first(&self) -> Hop {
        self.hops[0]
    }

    /// The most recent hop (current holder, or destination if delivered).
    pub fn last(&self) -> Hop {
        *self.hops.last().expect("paths are non-empty")
    }

    /// The node currently holding the message.
    pub fn current_node(&self) -> NodeId {
        self.last().node
    }

    /// Time of the final hop.
    pub fn end_time(&self) -> Seconds {
        self.last().time
    }

    /// Path duration: time of the last hop minus time of the source hop
    /// (`tₖ − t₁` in the paper).
    pub fn duration(&self) -> Seconds {
        self.last().time - self.first().time
    }

    /// True if `node` appears anywhere on the path.
    pub fn contains(&self, node: NodeId) -> bool {
        self.hops.iter().any(|h| h.node == node)
    }

    /// The node visited at hop index `i` (0 = source), if any.
    pub fn node_at(&self, i: usize) -> Option<NodeId> {
        self.hops.get(i).map(|h| h.node)
    }

    /// Iterator over the nodes along the path in order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.hops.iter().map(|h| h.node)
    }

    /// Returns a new path with one extra hop appended.
    ///
    /// # Panics
    ///
    /// Panics if the new hop's time is before the current end time.
    pub fn extended(&self, node: NodeId, time: Seconds) -> Path {
        assert!(time >= self.end_time(), "extension must not go back in time");
        let mut hops = self.hops.clone();
        hops.push(Hop { node, time });
        Path { hops }
    }

    /// Appends one hop in place. Crate-internal: the arena uses this to
    /// finish a delivered path without the intermediate clone `extended`
    /// would cost.
    ///
    /// # Panics
    ///
    /// Panics if the new hop's time is before the current end time.
    pub(crate) fn push_hop(&mut self, hop: Hop) {
        assert!(hop.time >= self.end_time(), "extension must not go back in time");
        self.hops.push(hop);
    }

    /// True if no node appears more than once (the paper's loop-avoidance
    /// requirement).
    pub fn is_loop_free(&self) -> bool {
        for (i, a) in self.hops.iter().enumerate() {
            for b in &self.hops[i + 1..] {
                if a.node == b.node {
                    return false;
                }
            }
        }
        true
    }

    /// Renders the path as `n0@0 -> n3@40 -> n7@90`, used by the Fig. 12
    /// report and by debugging output.
    pub fn render(&self) -> String {
        self.hops
            .iter()
            .map(|h| format!("{}@{:.0}", h.node, h.time))
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(v: u32) -> NodeId {
        NodeId(v)
    }

    #[test]
    fn source_path_basics() {
        let p = Path::source(nid(3), 12.0);
        assert_eq!(p.len(), 1);
        assert_eq!(p.relay_count(), 0);
        assert_eq!(p.duration(), 0.0);
        assert_eq!(p.current_node(), nid(3));
        assert!(p.contains(nid(3)));
        assert!(!p.contains(nid(4)));
        assert!(p.is_loop_free());
        assert!(!p.is_empty());
    }

    #[test]
    fn extension_appends_hops() {
        let p = Path::source(nid(0), 0.0).extended(nid(1), 10.0).extended(nid(2), 30.0);
        assert_eq!(p.len(), 3);
        assert_eq!(p.relay_count(), 2);
        assert_eq!(p.duration(), 30.0);
        assert_eq!(p.node_at(0), Some(nid(0)));
        assert_eq!(p.node_at(2), Some(nid(2)));
        assert_eq!(p.node_at(3), None);
        assert_eq!(p.nodes().collect::<Vec<_>>(), vec![nid(0), nid(1), nid(2)]);
    }

    #[test]
    #[should_panic]
    fn extension_cannot_go_back_in_time() {
        Path::source(nid(0), 10.0).extended(nid(1), 5.0);
    }

    #[test]
    fn loop_detection() {
        let looping = Path::from_hops(vec![
            Hop { node: nid(0), time: 0.0 },
            Hop { node: nid(1), time: 5.0 },
            Hop { node: nid(0), time: 9.0 },
        ]);
        assert!(!looping.is_loop_free());
        let clean =
            Path::from_hops(vec![Hop { node: nid(0), time: 0.0 }, Hop { node: nid(1), time: 5.0 }]);
        assert!(clean.is_loop_free());
    }

    #[test]
    #[should_panic]
    fn from_hops_rejects_decreasing_times() {
        Path::from_hops(vec![Hop { node: nid(0), time: 10.0 }, Hop { node: nid(1), time: 5.0 }]);
    }

    #[test]
    #[should_panic]
    fn from_hops_rejects_empty() {
        Path::from_hops(vec![]);
    }

    #[test]
    fn equal_times_are_allowed() {
        // Two hops within the same slot share the slot end time.
        let p = Path::source(nid(0), 10.0).extended(nid(1), 10.0);
        assert_eq!(p.duration(), 0.0);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn render_and_display() {
        let p = Path::source(nid(0), 0.0).extended(nid(5), 40.0);
        assert_eq!(p.render(), "n0@0 -> n5@40");
        assert_eq!(format!("{p}"), "n0@0 -> n5@40");
    }
}
