//! # psn-spacetime
//!
//! Space-time graph construction and valid-path enumeration for Pocket
//! Switched Networks — the core machinery of "Diversity of Forwarding Paths
//! in Pocket Switched Networks" (Erramilli et al., 2007), §4.
//!
//! The paper studies the *solution space* a forwarding algorithm searches:
//! for a message `(σ, δ, t₁)`, which time-respecting paths exist from the
//! source to the destination, and when does each reach the destination? To
//! answer that it:
//!
//! 1. discretizes time into Δ = 10 s slots and builds a **space-time graph**
//!    whose vertices are `(node, slot)` pairs, with zero-weight edges
//!    between nodes in contact during a slot and unit-weight edges from each
//!    node to itself in the next slot ([`graph::SpaceTimeGraph`]);
//! 2. defines **valid paths** — loop-free, respecting *minimal progress*
//!    (a node holding a message always delivers it when it meets the
//!    destination) and *first preference* ([`validity`]);
//! 3. enumerates, per message, the k shortest valid paths reaching each node
//!    per slot with a dynamic program ([`enumerate::PathEnumerator`],
//!    Fig. 3 of the paper), stopping once `k` paths reach the destination in
//!    a single slot;
//! 4. summarizes the result as the **path-explosion profile** of the
//!    message: the optimal delivery time T₁, the time Tₙ of the n-th path,
//!    the explosion time T₂₀₀₀ and the time-to-explosion TE = T₂₀₀₀ − T₁
//!    ([`explosion`]).
//!
//! The crate also provides a fast epidemic-delivery computation
//! ([`reachability`]) used as the optimal baseline by the forwarding
//! simulator, and the message model shared by all experiments
//! ([`message`]).
//!
//! ## The arena enumeration engine
//!
//! The enumerator stores in-flight paths in a parent-pointer [`arena`]
//! ([`PathArena`]) rather than as owned hop vectors. The design invariants:
//!
//! * **append-only** — arena entries are never mutated or freed while a
//!   message is being enumerated, so `u32` handles stay valid and path
//!   prefixes are shared structurally; extending a path is an O(1) push
//!   instead of an O(length) clone;
//! * **per-message lifetime** — the arena (inside an
//!   [`EnumerationScratch`]) is cleared between messages, and delivered
//!   paths are materialized to owned [`Path`]s (only up to the configured
//!   `stored_path_limit`) before the next message starts;
//! * **bitmask small-trace fast path** — every entry carries a 64-bit node
//!   occupancy mask: exact for traces with ≤ 64 nodes (O(1) loop-avoidance
//!   and first-preference checks), a Bloom-style filter with an O(depth)
//!   parent-walk fallback above that.
//!
//! [`SpaceTimeGraph`] precomputes per-slot component member lists and
//! active-node lists at build time, so the enumerator's hot loop borrows
//! slices instead of rescanning all nodes. The pre-arena algorithm is
//! retained as [`PathEnumerator::enumerate_reference`]; property tests
//! assert the two engines produce identical output, and the `enumeration`
//! Criterion bench (`cargo bench --bench enumeration`, see the `psn-bench`
//! crate) measures the speedup — use
//! `PSN_BENCH_MESSAGES=2 cargo bench --bench enumeration -- --quick` for a
//! smoke run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod enumerate;
pub mod explosion;
pub mod graph;
pub mod message;
pub mod path;
pub mod reachability;
pub mod validity;
pub mod windowed;

pub use arena::{PathArena, PathRef};
pub use enumerate::{EnumerationConfig, EnumerationResult, EnumerationScratch, PathEnumerator};
pub use explosion::{ExplosionProfile, ExplosionSummary, PATHS_FOR_EXPLOSION};
pub use graph::{Slot, SpaceTimeGraph, DEFAULT_DELTA};
pub use message::{Message, MessageGenerator, MessageWorkloadConfig};
pub use path::{Hop, Path};
pub use reachability::{epidemic_delivery_time, EpidemicOutcome};
pub use windowed::{
    stream_graph, GraphRef, IncrementalSlotter, MemorySpill, SharedGraph, SlotGuard, SlotSpill,
    SpillError, StreamBuildError, WindowedSpaceTimeGraph,
};
