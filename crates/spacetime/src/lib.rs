//! # psn-spacetime
//!
//! Space-time graph construction and valid-path enumeration for Pocket
//! Switched Networks — the core machinery of "Diversity of Forwarding Paths
//! in Pocket Switched Networks" (Erramilli et al., 2007), §4.
//!
//! The paper studies the *solution space* a forwarding algorithm searches:
//! for a message `(σ, δ, t₁)`, which time-respecting paths exist from the
//! source to the destination, and when does each reach the destination? To
//! answer that it:
//!
//! 1. discretizes time into Δ = 10 s slots and builds a **space-time graph**
//!    whose vertices are `(node, slot)` pairs, with zero-weight edges
//!    between nodes in contact during a slot and unit-weight edges from each
//!    node to itself in the next slot ([`graph::SpaceTimeGraph`]);
//! 2. defines **valid paths** — loop-free, respecting *minimal progress*
//!    (a node holding a message always delivers it when it meets the
//!    destination) and *first preference* ([`validity`]);
//! 3. enumerates, per message, the k shortest valid paths reaching each node
//!    per slot with a dynamic program ([`enumerate::PathEnumerator`],
//!    Fig. 3 of the paper), stopping once `k` paths reach the destination in
//!    a single slot;
//! 4. summarizes the result as the **path-explosion profile** of the
//!    message: the optimal delivery time T₁, the time Tₙ of the n-th path,
//!    the explosion time T₂₀₀₀ and the time-to-explosion TE = T₂₀₀₀ − T₁
//!    ([`explosion`]).
//!
//! The crate also provides a fast epidemic-delivery computation
//! ([`reachability`]) used as the optimal baseline by the forwarding
//! simulator, and the message model shared by all experiments
//! ([`message`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enumerate;
pub mod explosion;
pub mod graph;
pub mod message;
pub mod path;
pub mod reachability;
pub mod validity;

pub use enumerate::{EnumerationConfig, EnumerationResult, PathEnumerator};
pub use explosion::{ExplosionProfile, ExplosionSummary, PATHS_FOR_EXPLOSION};
pub use graph::{SpaceTimeGraph, DEFAULT_DELTA};
pub use message::{Message, MessageGenerator, MessageWorkloadConfig};
pub use path::{Hop, Path};
pub use reachability::{epidemic_delivery_time, EpidemicOutcome};
