//! Epidemic (optimal) delivery computation.
//!
//! Epidemic forwarding delivers every message along its optimal path: the
//! first path found by flooding is by definition the shortest-duration path
//! available to any forwarding algorithm (paper §4.1,
//! `T(σ, δ, t₁) = T_Epidemic(σ, δ, t₁)`).
//!
//! [`epidemic_spread`] floods a message through the space-time graph slot by
//! slot and records, for every node, the earliest time a copy reaches it.
//! This is much cheaper than full path enumeration and is used as the
//! optimal baseline by the forwarding experiments, for the delivery-time
//! CDFs, and as a cross-check on the enumerator's first-delivery times.

use psn_trace::Seconds;
use serde::{Deserialize, Serialize};

use crate::message::Message;
use crate::windowed::GraphRef;

/// The outcome of epidemic flooding for a single message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpidemicOutcome {
    /// The message that was flooded.
    pub message: Message,
    /// Earliest delivery time at the destination, if reachable before the
    /// end of the trace.
    pub delivery_time: Option<Seconds>,
    /// Earliest infection time per node (index = node id), `None` if the
    /// flood never reached that node.
    pub infection_times: Vec<Option<Seconds>>,
}

impl EpidemicOutcome {
    /// Delivery delay (delivery time minus creation time), if delivered.
    pub fn delay(&self) -> Option<Seconds> {
        self.delivery_time.map(|t| t - self.message.created_at)
    }

    /// Number of nodes that eventually received a copy (including the
    /// source).
    pub fn infected_count(&self) -> usize {
        self.infection_times.iter().filter(|t| t.is_some()).count()
    }
}

/// Floods a message from its source through the space-time graph and
/// returns per-node earliest infection times.
///
/// Flooding stops early once the destination is reached if `stop_at_destination`
/// is true; otherwise it continues to the end of the trace so that the full
/// infection curve is available.
pub fn epidemic_spread<'a>(
    graph: impl Into<GraphRef<'a>>,
    message: &Message,
    stop_at_destination: bool,
) -> EpidemicOutcome {
    let graph = graph.into();
    let n = graph.node_count();
    let mut infection: Vec<Option<Seconds>> = vec![None; n];
    infection[message.source.index()] = Some(message.created_at);

    let start_slot = graph.slot_of_time(message.created_at);
    let mut delivery_time = None;

    'slots: for s in start_slot..graph.slot_count() {
        let slot_time = graph.slot_end_time(s);
        let slot = graph.slot(s);
        // Any component containing an infected node becomes fully infected
        // by the end of the slot (zero-weight edges within the slot).
        // Collect infected component labels first to avoid order dependence.
        // Only nodes with contacts this slot can spread or catch a copy, so
        // both passes walk the precomputed active-node list instead of all n
        // nodes.
        let mut infected_components: Vec<u32> = Vec::new();
        for &node in slot.active_nodes() {
            if infection[node.index()].is_some() {
                infected_components.push(slot.component(node));
            }
        }
        if infected_components.is_empty() {
            continue;
        }
        infected_components.sort_unstable();
        infected_components.dedup();

        for &node in slot.active_nodes() {
            let idx = node.index();
            if infection[idx].is_some() {
                continue;
            }
            if infected_components.binary_search(&slot.component(node)).is_ok() {
                infection[idx] = Some(slot_time);
                if node == message.destination {
                    delivery_time = Some(slot_time);
                    if stop_at_destination {
                        break 'slots;
                    }
                }
            }
        }
    }

    EpidemicOutcome { message: *message, delivery_time, infection_times: infection }
}

/// Convenience wrapper returning only the optimal delivery time for a
/// message, `None` if the destination is unreachable within the trace.
pub fn epidemic_delivery_time<'a>(
    graph: impl Into<GraphRef<'a>>,
    message: &Message,
) -> Option<Seconds> {
    epidemic_spread(graph, message, true).delivery_time
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{EnumerationConfig, PathEnumerator};
    use crate::graph::SpaceTimeGraph;
    use psn_trace::contact::Contact;
    use psn_trace::node::{NodeClass, NodeRegistry};
    use psn_trace::trace::{ContactTrace, TimeWindow};
    use psn_trace::NodeId;

    fn nid(v: u32) -> NodeId {
        NodeId(v)
    }

    fn trace_from(contacts: Vec<(u32, u32, f64, f64)>, nodes: usize, end: f64) -> ContactTrace {
        let mut reg = NodeRegistry::new();
        for _ in 0..nodes {
            reg.add(NodeClass::Mobile);
        }
        let cs = contacts
            .into_iter()
            .map(|(a, b, s, e)| Contact::new(nid(a), nid(b), s, e).unwrap())
            .collect();
        ContactTrace::from_contacts("reach-test", reg, TimeWindow::new(0.0, end), cs).unwrap()
    }

    #[test]
    fn chain_delivery_time() {
        let trace = trace_from(vec![(0, 1, 1.0, 5.0), (1, 2, 21.0, 25.0)], 3, 60.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let message = Message::new(nid(0), nid(2), 0.0);
        let outcome = epidemic_spread(&graph, &message, false);
        assert_eq!(outcome.delivery_time, Some(30.0));
        assert_eq!(outcome.delay(), Some(30.0));
        assert_eq!(outcome.infected_count(), 3);
        assert_eq!(outcome.infection_times[1], Some(10.0));
        assert_eq!(epidemic_delivery_time(&graph, &message), Some(30.0));
    }

    #[test]
    fn unreachable_destination() {
        let trace = trace_from(vec![(0, 1, 1.0, 5.0)], 3, 40.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let message = Message::new(nid(0), nid(2), 0.0);
        let outcome = epidemic_spread(&graph, &message, false);
        assert_eq!(outcome.delivery_time, None);
        assert_eq!(outcome.delay(), None);
        assert_eq!(outcome.infected_count(), 2);
    }

    #[test]
    fn contacts_before_creation_time_are_ignored() {
        let trace = trace_from(vec![(0, 1, 1.0, 5.0), (1, 2, 21.0, 25.0)], 3, 60.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        // Created after the 0-1 contact: only the 1-2 contact remains, which
        // does not involve the source, so nothing is delivered.
        let message = Message::new(nid(0), nid(2), 15.0);
        assert_eq!(epidemic_delivery_time(&graph, &message), None);
    }

    #[test]
    fn intra_slot_component_spreads_in_one_slot() {
        // 0-1 and 1-2 overlap in the same slot: the message crosses both in
        // one slot via zero-weight edges.
        let trace = trace_from(vec![(0, 1, 1.0, 8.0), (1, 2, 2.0, 9.0)], 3, 30.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let message = Message::new(nid(0), nid(2), 0.0);
        assert_eq!(epidemic_delivery_time(&graph, &message), Some(10.0));
    }

    #[test]
    fn agrees_with_enumerator_first_delivery() {
        let trace = trace_from(
            vec![
                (0, 1, 1.0, 30.0),
                (0, 2, 5.0, 40.0),
                (1, 3, 35.0, 80.0),
                (2, 3, 45.0, 90.0),
                (1, 2, 50.0, 95.0),
                (3, 4, 100.0, 140.0),
                (2, 4, 110.0, 150.0),
                (0, 3, 120.0, 160.0),
            ],
            5,
            200.0,
        );
        let graph = SpaceTimeGraph::build_default(&trace);
        let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(50));
        for (src, dst, t) in [(0u32, 4u32, 0.0), (1, 4, 10.0), (2, 0, 0.0), (4, 0, 0.0)] {
            let message = Message::new(nid(src), nid(dst), t);
            let optimal = epidemic_delivery_time(&graph, &message);
            let enumerated = enumerator.enumerate(&message).first_delivery_time();
            assert_eq!(optimal, enumerated, "message {message}");
        }
    }

    #[test]
    fn stop_at_destination_does_not_change_delivery_time() {
        let trace =
            trace_from(vec![(0, 1, 1.0, 5.0), (1, 2, 21.0, 25.0), (2, 3, 41.0, 45.0)], 4, 60.0);
        let graph = SpaceTimeGraph::build_default(&trace);
        let message = Message::new(nid(0), nid(2), 0.0);
        let early = epidemic_spread(&graph, &message, true);
        let full = epidemic_spread(&graph, &message, false);
        assert_eq!(early.delivery_time, full.delivery_time);
        // The full run keeps spreading past the destination.
        assert!(full.infected_count() >= early.infected_count());
    }
}
