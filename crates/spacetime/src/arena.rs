//! Parent-pointer path arena: the storage engine behind the enumerator.
//!
//! The k-shortest valid-path enumeration (paper Fig. 3) keeps up to `k`
//! in-flight paths *per node per slot*; at paper scale (k = 2000, ~100
//! nodes) that is hundreds of thousands of live paths, and the dominant
//! operation is *extension* — append one hop to an existing path. Storing
//! each path as an owned `Vec<Hop>` makes every extension an O(L) clone of
//! the whole hop sequence; at the typical 4–8 hop depths of conference
//! traces, extension traffic dwarfs everything else the enumerator does.
//!
//! [`PathArena`] shares path prefixes structurally instead (the classic
//! multipath-routing trick): every in-flight path is a single arena entry
//! `(parent, node, time, depth, mask)` whose `parent` points at the path it
//! extends. Extension is an O(1) append; nothing is ever copied or freed
//! mid-message.
//!
//! Invariants:
//!
//! * **append-only** — entries are never mutated or removed once pushed, so
//!   `u32` handles ([`PathRef`]) stay valid for the arena's whole lifetime
//!   and parent chains can be walked without bounds worries;
//! * **per-message lifetime** — the enumerator [`clear`](PathArena::clear)s
//!   the arena between messages, reusing the allocation; handles must not
//!   outlive the message that produced them (deliveries are materialized to
//!   owned [`Path`]s before the next message starts);
//! * **bitmask small-trace fast path** — each entry carries a 64-bit
//!   occupancy mask over `node_id & 63`. For traces with ≤ 64 nodes the mask
//!   is *exact*, making loop-avoidance and first-preference checks O(1) bit
//!   tests; for larger traces it acts as a Bloom-style filter whose misses
//!   are definitive and whose hits fall back to an O(depth) parent walk.
//! * **structure-of-arrays layout** — entry fields live in parallel vectors
//!   rather than one `Vec<Entry>`. The enumerator's k-selection merge reads
//!   *only* depths of hundreds of candidates per inbox; with the AoS layout
//!   every key fetch dragged a whole 32-byte entry through the cache, while
//!   the dense [`depths`](PathArena::depths) slice packs sixteen keys per
//!   line and compares as plain integers.

use psn_trace::{NodeId, Seconds};

use crate::path::{Hop, Path};

/// Handle to a path stored in a [`PathArena`]. Only meaningful for the
/// arena (and arena generation) that issued it.
pub type PathRef = u32;

/// Sentinel parent for source entries.
const NO_PARENT: u32 = u32::MAX;

/// Append-only arena of parent-linked paths, stored as parallel per-field
/// vectors (SoA). See the module docs for the design invariants.
#[derive(Debug, Clone, Default)]
pub struct PathArena {
    /// Arena index of the path each entry extends; `NO_PARENT` for sources.
    parents: Vec<u32>,
    /// Number of hops on the path ending at each entry (≥ 1). Kept dense so
    /// the k-selection merge can read keys without touching other fields.
    depths: Vec<u32>,
    /// The node that received the message at each hop.
    nodes: Vec<NodeId>,
    /// Occupancy mask over `node_id & 63` of every node on each path.
    masks: Vec<u64>,
    /// The time each hop happened (slot end time; creation time for roots).
    times: Vec<Seconds>,
    /// True when node ids fit the 64-bit mask exactly (≤ 64 nodes).
    exact_masks: bool,
}

#[inline]
fn bit(node: NodeId) -> u64 {
    1u64 << (node.0 & 63)
}

impl PathArena {
    /// Creates an arena for a trace with `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        Self { exact_masks: node_count <= 64, ..Self::default() }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// True if the arena holds no entries.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// True if the 64-bit masks are exact (trace has ≤ 64 nodes).
    pub fn exact_masks(&self) -> bool {
        self.exact_masks
    }

    /// Drops all paths, keeping the allocations. `node_count` re-arms the
    /// mask mode for the next message's trace (it never changes within one
    /// graph, but the scratch that owns this arena can be reused across
    /// graphs).
    pub fn clear(&mut self, node_count: usize) {
        self.parents.clear();
        self.depths.clear();
        self.nodes.clear();
        self.masks.clear();
        self.times.clear();
        self.exact_masks = node_count <= 64;
    }

    /// Starts a new single-hop path at `node`.
    pub fn root(&mut self, node: NodeId, time: Seconds) -> PathRef {
        self.push(NO_PARENT, 1, node, bit(node), time)
    }

    /// Extends `parent` with one hop — O(1), no copying.
    ///
    /// The caller is responsible for loop avoidance (checking
    /// [`contains`](Self::contains) first); times must be non-decreasing
    /// along any chain, which the enumerator guarantees by construction.
    pub fn extend(&mut self, parent: PathRef, node: NodeId, time: Seconds) -> PathRef {
        let p = parent as usize;
        debug_assert!(time >= self.times[p], "extension must not go back in time");
        self.push(parent, self.depths[p] + 1, node, self.masks[p] | bit(node), time)
    }

    fn push(&mut self, parent: u32, depth: u32, node: NodeId, mask: u64, time: Seconds) -> PathRef {
        let idx = self.parents.len();
        assert!(idx < NO_PARENT as usize, "path arena exhausted u32 handles");
        self.parents.push(parent);
        self.depths.push(depth);
        self.nodes.push(node);
        self.masks.push(mask);
        self.times.push(time);
        idx as PathRef
    }

    /// Number of hops on the path ending at `r`.
    #[inline]
    pub fn depth(&self, r: PathRef) -> u32 {
        self.depths[r as usize]
    }

    /// The dense depth-per-entry slice, indexed by [`PathRef`] — the
    /// k-selection merge reads its sort keys straight off this slice.
    #[inline]
    pub fn depths(&self) -> &[u32] {
        &self.depths
    }

    /// The node holding the message at `r`.
    #[inline]
    pub fn node(&self, r: PathRef) -> NodeId {
        self.nodes[r as usize]
    }

    /// The time of the final hop of `r`.
    #[inline]
    pub fn time(&self, r: PathRef) -> Seconds {
        self.times[r as usize]
    }

    /// True if `node` lies on the path ending at `r`. O(1) for exact masks
    /// and for filter misses; O(depth) parent walk otherwise.
    #[inline]
    pub fn contains(&self, r: PathRef, node: NodeId) -> bool {
        if self.masks[r as usize] & bit(node) == 0 {
            return false;
        }
        if self.exact_masks {
            return true;
        }
        self.walk(r, |n| n == node)
    }

    /// True if any node of the path ending at `r` is flagged in `set`
    /// (indexed by node id), where `set_mask` is the OR of [`bit`]s of the
    /// flagged nodes. This is the first-preference intersection test: O(1)
    /// whenever the masks prove disjointness.
    #[inline]
    pub fn intersects(&self, r: PathRef, set_mask: u64, set: &[bool]) -> bool {
        if self.masks[r as usize] & set_mask == 0 {
            return false;
        }
        if self.exact_masks {
            return true;
        }
        self.walk(r, |n| set[n.index()])
    }

    /// Walks the chain from `r` back to its source, returning true if
    /// `pred` matches any node.
    fn walk(&self, r: PathRef, pred: impl Fn(NodeId) -> bool) -> bool {
        let mut cursor = r as usize;
        loop {
            if pred(self.nodes[cursor]) {
                return true;
            }
            if self.parents[cursor] == NO_PARENT {
                return false;
            }
            cursor = self.parents[cursor] as usize;
        }
    }

    /// Materializes the full hop sequence of `r` as an owned [`Path`].
    pub fn materialize(&self, r: PathRef) -> Path {
        self.materialize_hops(r, 0)
    }

    /// Materializes `r` plus one extra delivery hop `(node, time)` — the
    /// shape every delivered path takes — without an intermediate clone.
    pub fn materialize_extended(&self, r: PathRef, node: NodeId, time: Seconds) -> Path {
        let mut path = self.materialize_hops(r, 1);
        // `materialize_hops` left one trailing slot for the delivery hop.
        path.push_hop(Hop { node, time });
        path
    }

    fn materialize_hops(&self, r: PathRef, extra: usize) -> Path {
        let depth = self.depth(r) as usize;
        let mut hops = vec![Hop { node: NodeId(0), time: 0.0 }; depth];
        hops.reserve_exact(extra);
        let mut cursor = r as usize;
        for slot in hops.iter_mut().rev() {
            *slot = Hop { node: self.nodes[cursor], time: self.times[cursor] };
            cursor = self.parents[cursor] as usize;
        }
        debug_assert_eq!(cursor, NO_PARENT as usize);
        Path::from_hops(hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(v: u32) -> NodeId {
        NodeId(v)
    }

    #[test]
    fn roots_and_extensions_share_prefixes() {
        let mut arena = PathArena::new(8);
        let root = arena.root(nid(0), 0.0);
        let a = arena.extend(root, nid(1), 10.0);
        let b = arena.extend(root, nid(2), 10.0);
        let deep = arena.extend(a, nid(3), 20.0);
        assert_eq!(arena.len(), 4); // shared prefix: no copies of the root
        assert_eq!(arena.depth(root), 1);
        assert_eq!(arena.depth(a), 2);
        assert_eq!(arena.depth(deep), 3);
        assert_eq!(arena.node(b), nid(2));
        assert_eq!(arena.time(deep), 20.0);
    }

    #[test]
    fn contains_is_exact_for_small_traces() {
        let mut arena = PathArena::new(8);
        assert!(arena.exact_masks());
        let root = arena.root(nid(0), 0.0);
        let p = arena.extend(root, nid(5), 10.0);
        assert!(arena.contains(p, nid(0)));
        assert!(arena.contains(p, nid(5)));
        assert!(!arena.contains(p, nid(3)));
    }

    #[test]
    fn contains_falls_back_to_walks_for_large_traces() {
        // Nodes 2 and 66 collide in the 64-bit mask (66 & 63 == 2); the
        // filter hit must be confirmed by a walk.
        let mut arena = PathArena::new(100);
        assert!(!arena.exact_masks());
        let root = arena.root(nid(0), 0.0);
        let p = arena.extend(root, nid(66), 10.0);
        assert!(arena.contains(p, nid(66)));
        assert!(!arena.contains(p, nid(2)), "mask collision must not report a false positive");
        assert!(!arena.contains(p, nid(40)));
    }

    #[test]
    fn intersects_matches_membership() {
        let mut arena = PathArena::new(10);
        let root = arena.root(nid(1), 0.0);
        let p = arena.extend(root, nid(4), 10.0);
        let mut set = vec![false; 10];
        set[4] = true;
        let set_mask = bit(nid(4));
        assert!(arena.intersects(p, set_mask, &set));
        let mut other = vec![false; 10];
        other[7] = true;
        assert!(!arena.intersects(p, bit(nid(7)), &other));
    }

    #[test]
    fn intersects_confirms_collisions_on_large_traces() {
        let mut arena = PathArena::new(100);
        let root = arena.root(nid(66), 0.0);
        let mut set = vec![false; 100];
        set[2] = true; // collides with 66 in the mask
        assert!(!arena.intersects(root, bit(nid(2)), &set));
        set[66] = true;
        assert!(arena.intersects(root, bit(nid(2)) | bit(nid(66)), &set));
    }

    #[test]
    fn materialize_reconstructs_hop_sequences() {
        let mut arena = PathArena::new(8);
        let root = arena.root(nid(0), 5.0);
        let a = arena.extend(root, nid(1), 10.0);
        let b = arena.extend(a, nid(2), 30.0);
        let path = arena.materialize(b);
        assert_eq!(path.len(), 3);
        assert_eq!(path.nodes().collect::<Vec<_>>(), vec![nid(0), nid(1), nid(2)]);
        assert_eq!(path.first().time, 5.0);
        assert_eq!(path.end_time(), 30.0);
    }

    #[test]
    fn materialize_extended_appends_the_delivery_hop() {
        let mut arena = PathArena::new(8);
        let root = arena.root(nid(0), 0.0);
        let a = arena.extend(root, nid(1), 10.0);
        let path = arena.materialize_extended(a, nid(7), 20.0);
        assert_eq!(path.nodes().collect::<Vec<_>>(), vec![nid(0), nid(1), nid(7)]);
        assert_eq!(path.end_time(), 20.0);
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn clear_retains_capacity_and_rearms_masks() {
        let mut arena = PathArena::new(8);
        let root = arena.root(nid(0), 0.0);
        arena.extend(root, nid(1), 1.0);
        arena.clear(100);
        assert!(arena.is_empty());
        assert!(!arena.exact_masks());
        arena.clear(8);
        assert!(arena.exact_masks());
    }
}
