//! Messages and message workloads.
//!
//! A message is a triple `(σ, δ, t₁)`: source node, destination node, and
//! creation time. The paper evaluates two workloads built from the same
//! primitive:
//!
//! * for the path-enumeration study (§4), messages are drawn uniformly at
//!   random — source and destination uniform over the nodes, creation time
//!   uniform over the window;
//! * for the forwarding study (§6), messages arrive as a Poisson process
//!   with one message every 4 seconds, with uniform random endpoints.
//!
//! In both cases messages are only generated during the first two of the
//! three hours so that each message has at least an hour in which it can be
//! delivered (end-effect avoidance).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use psn_trace::{NodeId, Seconds};

/// A message to be forwarded from `source` to `destination`, created at
/// `created_at` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Originating node σ.
    pub source: NodeId,
    /// Destination node δ.
    pub destination: NodeId,
    /// Creation time t₁ in seconds from the window start.
    pub created_at: Seconds,
}

impl Message {
    /// Creates a message, panicking if source and destination coincide
    /// (such messages are trivially delivered and excluded by the paper).
    pub fn new(source: NodeId, destination: NodeId, created_at: Seconds) -> Self {
        assert!(source != destination, "source and destination must differ");
        Self { source, destination, created_at }
    }
}

impl std::fmt::Display for Message {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}->{} @{:.0}s", self.source, self.destination, self.created_at)
    }
}

/// Configuration of a message workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MessageWorkloadConfig {
    /// Number of nodes to draw endpoints from (ids `0..nodes`).
    pub nodes: usize,
    /// Messages are created in `[0, generation_horizon)` seconds. The paper
    /// uses the first two hours of each three-hour window.
    pub generation_horizon: Seconds,
    /// Mean message inter-arrival time for the Poisson workload (the paper
    /// uses 4 seconds).
    pub mean_interarrival: Seconds,
    /// RNG seed.
    pub seed: u64,
}

impl MessageWorkloadConfig {
    /// The paper's forwarding workload over a three-hour window: one message
    /// every 4 seconds during the first two hours.
    pub fn paper_default(nodes: usize) -> Self {
        Self { nodes, generation_horizon: 2.0 * 3600.0, mean_interarrival: 4.0, seed: 42 }
    }
}

/// Deterministic generator of message workloads.
#[derive(Debug, Clone)]
pub struct MessageGenerator {
    config: MessageWorkloadConfig,
}

impl MessageGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two nodes are configured or the horizon or
    /// inter-arrival time is non-positive.
    pub fn new(config: MessageWorkloadConfig) -> Self {
        assert!(config.nodes >= 2, "need at least two nodes for messages");
        assert!(config.generation_horizon > 0.0, "horizon must be positive");
        assert!(config.mean_interarrival > 0.0, "inter-arrival time must be positive");
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &MessageWorkloadConfig {
        &self.config
    }

    /// Draws `count` messages uniformly at random: endpoints uniform over
    /// nodes (distinct), creation time uniform over the generation horizon.
    /// This is the workload of the path-enumeration study (§4).
    pub fn uniform_messages(&self, count: usize) -> Vec<Message> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        (0..count).map(|_| self.draw_message(&mut rng)).collect()
    }

    /// Generates a Poisson arrival workload: inter-arrival times exponential
    /// with the configured mean, uniform random endpoints. This is the
    /// forwarding-study workload (§6). `run` perturbs the seed so that the
    /// paper's "averaged over 10 simulation runs" can be reproduced.
    pub fn poisson_messages(&self, run: u64) -> Vec<Message> {
        let mut rng =
            StdRng::seed_from_u64(self.config.seed.wrapping_add(run.wrapping_mul(0x9E37)));
        let mut messages = Vec::new();
        let rate = 1.0 / self.config.mean_interarrival;
        let mut t = 0.0;
        loop {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / rate;
            if t >= self.config.generation_horizon {
                break;
            }
            let mut m = self.draw_message(&mut rng);
            m.created_at = t;
            messages.push(m);
        }
        messages
    }

    fn draw_message(&self, rng: &mut StdRng) -> Message {
        let n = self.config.nodes as u32;
        let source = NodeId(rng.gen_range(0..n));
        let mut destination = NodeId(rng.gen_range(0..n));
        while destination == source {
            destination = NodeId(rng.gen_range(0..n));
        }
        let created_at = rng.gen_range(0.0..self.config.generation_horizon);
        Message { source, destination, created_at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MessageWorkloadConfig {
        MessageWorkloadConfig {
            nodes: 20,
            generation_horizon: 7200.0,
            mean_interarrival: 4.0,
            seed: 7,
        }
    }

    #[test]
    #[should_panic]
    fn message_endpoints_must_differ() {
        Message::new(NodeId(1), NodeId(1), 0.0);
    }

    #[test]
    fn message_display() {
        let m = Message::new(NodeId(1), NodeId(2), 30.0);
        assert_eq!(m.to_string(), "n1->n2 @30s");
    }

    #[test]
    fn uniform_messages_respect_bounds() {
        let gen = MessageGenerator::new(config());
        let msgs = gen.uniform_messages(500);
        assert_eq!(msgs.len(), 500);
        for m in &msgs {
            assert!(m.source != m.destination);
            assert!(m.source.0 < 20 && m.destination.0 < 20);
            assert!(m.created_at >= 0.0 && m.created_at < 7200.0);
        }
    }

    #[test]
    fn uniform_messages_are_deterministic() {
        let gen = MessageGenerator::new(config());
        assert_eq!(gen.uniform_messages(50), gen.uniform_messages(50));
    }

    #[test]
    fn poisson_rate_matches_mean_interarrival() {
        let gen = MessageGenerator::new(config());
        let msgs = gen.poisson_messages(0);
        // Expected count: horizon / mean interarrival = 1800.
        let expected = 7200.0 / 4.0;
        assert!((msgs.len() as f64 - expected).abs() < 0.15 * expected, "count = {}", msgs.len());
        // Arrival times are increasing.
        for w in msgs.windows(2) {
            assert!(w[0].created_at <= w[1].created_at);
        }
    }

    #[test]
    fn different_runs_differ() {
        let gen = MessageGenerator::new(config());
        let a = gen.poisson_messages(0);
        let b = gen.poisson_messages(1);
        assert_ne!(a, b);
        // Same run is reproducible.
        assert_eq!(a, gen.poisson_messages(0));
    }

    #[test]
    fn paper_default_workload() {
        let cfg = MessageWorkloadConfig::paper_default(98);
        assert_eq!(cfg.nodes, 98);
        assert_eq!(cfg.generation_horizon, 7200.0);
        assert_eq!(cfg.mean_interarrival, 4.0);
    }

    #[test]
    #[should_panic]
    fn rejects_single_node_population() {
        MessageGenerator::new(MessageWorkloadConfig { nodes: 1, ..config() });
    }
}
