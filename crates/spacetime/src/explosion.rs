//! Path-explosion analysis (paper §4.2).
//!
//! For each message the paper looks at the sequence of delivery times
//! `T₁ ≤ T₂ ≤ …` of its valid paths and defines:
//!
//! * the **optimal path duration** `T₁ − t₁` (how long the first/optimal
//!   path takes, Fig. 4a);
//! * the **explosion time** `T₂₀₀₀`, the time by which 2000 paths in total
//!   have reached the destination;
//! * the **time to explosion** `TE = T₂₀₀₀ − T₁` (Fig. 4b), the striking
//!   finding being that TE is usually an order of magnitude smaller than the
//!   optimal duration;
//! * the **growth curve** of cumulative path arrivals since `T₁`, which
//!   looks approximately exponential (Fig. 6).
//!
//! [`ExplosionProfile`] computes those quantities from an
//! [`EnumerationResult`]; [`ExplosionSummary`] aggregates profiles over a
//! message population and exposes the CDFs/scatter series that the figure
//! drivers print.

use serde::{Deserialize, Serialize};

use psn_stats::{Ecdf, Histogram};
use psn_trace::Seconds;

use crate::enumerate::EnumerationResult;
use crate::message::Message;

/// The paper's explosion threshold: the number of delivered paths that
/// defines `T₂₀₀₀`.
pub const PATHS_FOR_EXPLOSION: usize = 2000;

/// Per-message path-explosion profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplosionProfile {
    /// The message this profile describes.
    pub message: Message,
    /// Duration of the optimal path (`T₁ − t₁`), if any path was found.
    pub optimal_duration: Option<Seconds>,
    /// Time to explosion `TE = Tₙ − T₁` for the configured threshold, if at
    /// least that many paths were found.
    pub time_to_explosion: Option<Seconds>,
    /// The explosion threshold `n` used (2000 in the paper).
    pub explosion_threshold: usize,
    /// Total number of delivered paths recorded for the message.
    pub total_paths: usize,
    /// Delivery times (absolute seconds) of every recorded path.
    pub delivery_times: Vec<Seconds>,
}

impl ExplosionProfile {
    /// Builds a profile from an enumeration result using the paper's
    /// threshold of 2000 paths.
    pub fn from_enumeration(result: &EnumerationResult) -> Self {
        Self::with_threshold(result, PATHS_FOR_EXPLOSION)
    }

    /// Builds a profile with an explicit explosion threshold `n` (the paper
    /// notes there is nothing sacrosanct about 2000; smaller thresholds are
    /// used by the quick experiment profile).
    pub fn with_threshold(result: &EnumerationResult, n: usize) -> Self {
        let optimal_duration = result.optimal_duration();
        let time_to_explosion = match (result.first_delivery_time(), result.nth_delivery_time(n)) {
            (Some(first), Some(nth)) => Some(nth - first),
            _ => None,
        };
        Self {
            message: result.message,
            optimal_duration,
            time_to_explosion,
            explosion_threshold: n,
            total_paths: result.delivered_count(),
            delivery_times: result.deliveries.iter().map(|d| d.time).collect(),
        }
    }

    /// True if at least one path reached the destination.
    pub fn delivered(&self) -> bool {
        self.optimal_duration.is_some()
    }

    /// True if the message reached its explosion threshold.
    pub fn exploded(&self) -> bool {
        self.time_to_explosion.is_some()
    }

    /// Cumulative path arrivals as `(seconds since first delivery,
    /// cumulative count)` — the Fig. 6 growth curve for one message.
    pub fn growth_curve(&self) -> Vec<(Seconds, usize)> {
        let Some(first) = self.delivery_times.first().copied() else {
            return Vec::new();
        };
        let mut curve = Vec::new();
        let mut count = 0usize;
        let mut i = 0;
        let times = &self.delivery_times;
        while i < times.len() {
            let t = times[i];
            let mut j = i;
            while j < times.len() && times[j] == t {
                j += 1;
            }
            count = j;
            curve.push((t - first, count));
            i = j;
        }
        debug_assert_eq!(count, times.len());
        curve
    }

    /// Histogram of path arrivals over time since the first delivery, with
    /// the given bin width (Fig. 6 uses the Δ-sized bursts directly; the
    /// figure driver uses 10-second bins).
    pub fn arrival_histogram(
        &self,
        bin_seconds: Seconds,
        span_seconds: Seconds,
    ) -> Option<Histogram> {
        let first = *self.delivery_times.first()?;
        let bins = (span_seconds / bin_seconds).ceil() as usize;
        let mut h = Histogram::new(0.0, bin_seconds, bins.max(1)).ok()?;
        for &t in &self.delivery_times {
            h.add(t - first);
        }
        Some(h)
    }
}

/// Aggregate explosion statistics over a message population.
#[derive(Debug, Clone, Default)]
pub struct ExplosionSummary {
    profiles: Vec<ExplosionProfile>,
}

impl ExplosionSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one per-message profile.
    pub fn push(&mut self, profile: ExplosionProfile) {
        self.profiles.push(profile);
    }

    /// All collected profiles.
    pub fn profiles(&self) -> &[ExplosionProfile] {
        &self.profiles
    }

    /// Number of messages analysed.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True if no profiles have been collected.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Fraction of messages for which at least one path was found.
    pub fn delivery_fraction(&self) -> f64 {
        if self.profiles.is_empty() {
            return 0.0;
        }
        self.profiles.iter().filter(|p| p.delivered()).count() as f64 / self.profiles.len() as f64
    }

    /// Fraction of messages that reached their explosion threshold.
    pub fn explosion_fraction(&self) -> f64 {
        if self.profiles.is_empty() {
            return 0.0;
        }
        self.profiles.iter().filter(|p| p.exploded()).count() as f64 / self.profiles.len() as f64
    }

    /// CDF of optimal path durations over delivered messages (Fig. 4a).
    pub fn optimal_duration_cdf(&self) -> Option<Ecdf> {
        let xs: Vec<f64> = self.profiles.iter().filter_map(|p| p.optimal_duration).collect();
        Ecdf::new(&xs).ok()
    }

    /// CDF of times to explosion over exploded messages (Fig. 4b).
    pub fn time_to_explosion_cdf(&self) -> Option<Ecdf> {
        let xs: Vec<f64> = self.profiles.iter().filter_map(|p| p.time_to_explosion).collect();
        Ecdf::new(&xs).ok()
    }

    /// `(optimal duration, time to explosion)` scatter points over messages
    /// that exploded (Fig. 5 / Fig. 8).
    pub fn scatter_points(&self) -> Vec<(Seconds, Seconds)> {
        self.profiles
            .iter()
            .filter_map(|p| match (p.optimal_duration, p.time_to_explosion) {
                (Some(t1), Some(te)) => Some((t1, te)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::Delivery;
    use psn_trace::NodeId;

    fn result_with_times(times: &[f64], created_at: f64) -> EnumerationResult {
        EnumerationResult {
            message: Message::new(NodeId(0), NodeId(1), created_at),
            deliveries: times.iter().map(|&t| Delivery { time: t, hops: 3 }).collect(),
            sample_paths: Vec::new(),
            exploded: false,
            truncated: false,
            slots_processed: 0,
        }
    }

    #[test]
    fn profile_computes_t1_and_te() {
        let result = result_with_times(&[100.0, 110.0, 120.0, 130.0], 40.0);
        let profile = ExplosionProfile::with_threshold(&result, 3);
        assert_eq!(profile.optimal_duration, Some(60.0));
        assert_eq!(profile.time_to_explosion, Some(20.0));
        assert!(profile.delivered());
        assert!(profile.exploded());
        assert_eq!(profile.total_paths, 4);
    }

    #[test]
    fn profile_without_enough_paths_has_no_te() {
        let result = result_with_times(&[100.0, 110.0], 0.0);
        let profile = ExplosionProfile::with_threshold(&result, 5);
        assert_eq!(profile.optimal_duration, Some(100.0));
        assert_eq!(profile.time_to_explosion, None);
        assert!(!profile.exploded());
    }

    #[test]
    fn undelivered_profile() {
        let result = result_with_times(&[], 0.0);
        let profile = ExplosionProfile::from_enumeration(&result);
        assert!(!profile.delivered());
        assert!(profile.growth_curve().is_empty());
        assert!(profile.arrival_histogram(10.0, 100.0).is_none());
        assert_eq!(profile.explosion_threshold, PATHS_FOR_EXPLOSION);
    }

    #[test]
    fn growth_curve_is_cumulative_and_groups_bursts() {
        let result = result_with_times(&[50.0, 50.0, 60.0, 60.0, 60.0, 90.0], 0.0);
        let profile = ExplosionProfile::with_threshold(&result, 4);
        let curve = profile.growth_curve();
        assert_eq!(curve, vec![(0.0, 2), (10.0, 5), (40.0, 6)]);
    }

    #[test]
    fn arrival_histogram_counts_paths() {
        let result = result_with_times(&[50.0, 55.0, 75.0], 0.0);
        let profile = ExplosionProfile::with_threshold(&result, 2);
        let h = profile.arrival_histogram(10.0, 100.0).unwrap();
        assert_eq!(h.count(0), 2.0); // 0 and 5 seconds after first
        assert_eq!(h.count(2), 1.0); // 25 seconds after first
        assert_eq!(h.total(), 3.0);
    }

    #[test]
    fn summary_aggregates_fractions_and_cdfs() {
        let mut summary = ExplosionSummary::new();
        summary.push(ExplosionProfile::with_threshold(&result_with_times(&[100.0, 120.0], 0.0), 2));
        summary.push(ExplosionProfile::with_threshold(&result_with_times(&[200.0], 0.0), 2));
        summary.push(ExplosionProfile::with_threshold(&result_with_times(&[], 0.0), 2));
        assert_eq!(summary.len(), 3);
        assert!(!summary.is_empty());
        assert!((summary.delivery_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((summary.explosion_fraction() - 1.0 / 3.0).abs() < 1e-12);
        let t1_cdf = summary.optimal_duration_cdf().unwrap();
        assert_eq!(t1_cdf.len(), 2);
        let te_cdf = summary.time_to_explosion_cdf().unwrap();
        assert_eq!(te_cdf.len(), 1);
        assert_eq!(summary.scatter_points(), vec![(100.0, 20.0)]);
    }

    #[test]
    fn empty_summary_defaults() {
        let summary = ExplosionSummary::new();
        assert!(summary.is_empty());
        assert_eq!(summary.delivery_fraction(), 0.0);
        assert_eq!(summary.explosion_fraction(), 0.0);
        assert!(summary.optimal_duration_cdf().is_none());
        assert!(summary.scatter_points().is_empty());
    }
}
