//! The space-time graph.
//!
//! Following §4.1 of the paper (and Merugu/Ammar/Zegura's space-time routing
//! formulation it cites), time is discretized into slots of Δ seconds.
//! Vertices are `(node, slot)` pairs. There are two kinds of edges:
//!
//! * a **zero-weight contact edge** between `(x, T)` and `(y, T)` iff `x`
//!   and `y` were in contact at any time during `[T − Δ, T)`;
//! * a **unit-weight wait edge** from `(x, T)` to `(x, T + Δ)` for every
//!   node.
//!
//! Rather than materializing vertices, [`SpaceTimeGraph`] stores, for each
//! slot, the contact adjacency among nodes during that slot, plus the
//! connected components of that slot graph (zero-weight reachability). That
//! is all the path enumerator and the epidemic baseline need, and it keeps
//! the memory footprint proportional to the number of (contact × slot)
//! incidences.

use psn_trace::{ContactTrace, NodeId, Seconds};

/// The paper's default discretization step (10 seconds).
pub const DEFAULT_DELTA: Seconds = 10.0;

/// One time slot of the space-time graph.
///
/// Besides the adjacency and component labelling, each slot precomputes at
/// build time the views the enumerator's hot loop needs, so per-message
/// work never rescans all `n` nodes:
///
/// * `active` — the nodes with at least one contact this slot, ascending;
/// * `members` — the same nodes grouped contiguously by component label
///   (ascending within each group), with `spans[label]` delimiting each
///   group, so a component's member list is a borrowed slice.
#[derive(Debug, Clone, PartialEq)]
pub struct Slot {
    /// Adjacency among nodes in contact during this slot. `adjacency[i]`
    /// lists the neighbors of node `i`, deduplicated and sorted.
    adjacency: Vec<Vec<NodeId>>,
    /// Connected-component label per node under zero-weight edges. Isolated
    /// nodes get a unique singleton label.
    component: Vec<u32>,
    /// The slot's contact edges, normalized to `(low, high)` node order and
    /// sorted lexicographically — the order a full ascending adjacency scan
    /// would produce, so edge-driven consumers (the forwarding simulator)
    /// replay contacts in exactly the same sequence.
    edges: Vec<(NodeId, NodeId)>,
    /// Nodes with at least one contact this slot, ascending.
    active: Vec<NodeId>,
    /// Active nodes grouped by component label; each group ascending.
    members: Vec<NodeId>,
    /// Half-open `(start, end)` range into `members` per component label.
    /// Labels of isolated nodes get an empty range.
    spans: Vec<(u32, u32)>,
}

impl Slot {
    fn new(adjacency: Vec<Vec<NodeId>>, edges: Vec<(NodeId, NodeId)>) -> Self {
        let component = components_of(&adjacency);
        let n = adjacency.len();
        let active: Vec<NodeId> =
            (0..n as u32).map(NodeId).filter(|node| !adjacency[node.index()].is_empty()).collect();

        // Group active nodes by component label with a counting pass; the
        // ascending fill keeps each group sorted.
        let label_count = component.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut sizes = vec![0u32; label_count];
        for node in &active {
            sizes[component[node.index()] as usize] += 1;
        }
        let mut spans = Vec::with_capacity(label_count);
        let mut offset = 0u32;
        for &size in &sizes {
            spans.push((offset, offset + size));
            offset += size;
        }
        let mut members = vec![NodeId(0); active.len()];
        let mut cursors: Vec<u32> = spans.iter().map(|&(start, _)| start).collect();
        for &node in &active {
            let label = component[node.index()] as usize;
            members[cursors[label] as usize] = node;
            cursors[label] += 1;
        }

        Self { adjacency, component, edges, active, members, spans }
    }

    /// Seals a slot from its raw edge list — unnormalized, unsorted,
    /// possibly containing duplicates — exactly as
    /// [`SpaceTimeGraph::build`] does for each slot. This is the single
    /// sealing path shared by the materialized builder, the incremental
    /// stream builder and spill reload, so every route to a `Slot` yields
    /// bit-identical contents for the same edge multiset.
    pub fn seal(node_count: usize, mut edges: Vec<(NodeId, NodeId)>) -> Self {
        for edge in &mut edges {
            if edge.0 .0 > edge.1 .0 {
                *edge = (edge.1, edge.0);
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let mut adjacency = vec![Vec::new(); node_count];
        for &(a, b) in &edges {
            adjacency[a.index()].push(b);
            adjacency[b.index()].push(a);
        }
        for list in &mut adjacency {
            list.sort_unstable();
            list.dedup();
        }
        Slot::new(adjacency, edges)
    }

    /// A slot with no contacts over `node_count` nodes. Every node is
    /// isolated with its own singleton component label (`label = node id`),
    /// so one shared empty slot answers queries for *any* contact-free slot
    /// identically to a freshly built one.
    pub fn empty(node_count: usize) -> Self {
        Self::seal(node_count, Vec::new())
    }

    /// Number of nodes the slot covers.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Neighbors of `node` during this slot, deduplicated and ascending.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.index()]
    }

    /// True if `node` has at least one contact during this slot.
    pub fn has_contacts(&self, node: NodeId) -> bool {
        !self.adjacency[node.index()].is_empty()
    }

    /// Connected-component label of `node` under zero-weight edges.
    pub fn component(&self, node: NodeId) -> u32 {
        self.component[node.index()]
    }

    /// True if `a` and `b` can reach each other through zero-weight edges
    /// during this slot (same label and at least one contact each).
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        self.has_contacts(a)
            && self.has_contacts(b)
            && self.component[a.index()] == self.component[b.index()]
    }

    /// All members of `node`'s contact component *including* `node`,
    /// ascending; empty if `node` has no contacts this slot.
    pub fn component_slice(&self, node: NodeId) -> &[NodeId] {
        if self.adjacency[node.index()].is_empty() {
            return &[];
        }
        let (start, end) = self.spans[self.component[node.index()] as usize];
        &self.members[start as usize..end as usize]
    }

    /// Members of `node`'s contact component *excluding* `node` itself,
    /// as an owned vector (allocating; the hot paths use
    /// [`component_slice`](Self::component_slice) instead).
    pub fn component_members(&self, node: NodeId) -> Vec<NodeId> {
        self.component_slice(node).iter().copied().filter(|&m| m != node).collect()
    }

    /// Nodes with at least one contact this slot, ascending.
    pub fn active_nodes(&self) -> &[NodeId] {
        &self.active
    }

    /// The slot's contact edges, normalized to `(low, high)` order and
    /// sorted lexicographically.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Number of contact edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True if the slot has no contact edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Approximate resident size in bytes of this slot's structures — the
    /// unit of account for window-budget and artifact-store bookkeeping.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.adjacency.len() * std::mem::size_of::<Vec<NodeId>>()
            + self
                .adjacency
                .iter()
                .map(|adj| adj.len() * std::mem::size_of::<NodeId>())
                .sum::<usize>()
            + self.component.len() * std::mem::size_of::<u32>()
            + self.edges.len() * std::mem::size_of::<(NodeId, NodeId)>()
            + (self.active.len() + self.members.len()) * std::mem::size_of::<NodeId>()
            + self.spans.len() * std::mem::size_of::<(u32, u32)>()
    }
}

/// The Δ-discretized space-time graph of a contact trace.
#[derive(Debug, Clone)]
pub struct SpaceTimeGraph {
    delta: Seconds,
    node_count: usize,
    slots: Vec<Slot>,
    /// Indices of slots with at least one contact edge, ascending.
    busy_slots: Vec<usize>,
    window_start: Seconds,
    window_end: Seconds,
}

impl SpaceTimeGraph {
    /// Builds the space-time graph of `trace` with discretization step
    /// `delta` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not strictly positive.
    pub fn build(trace: &ContactTrace, delta: Seconds) -> Self {
        assert!(delta > 0.0 && delta.is_finite(), "delta must be positive and finite");
        let node_count = trace.node_count();
        let window = trace.window();
        let num_slots = ((window.end - window.start) / delta).ceil() as usize;
        let num_slots = num_slots.max(1);

        // Collect per-slot edge lists first, then dedupe and build adjacency.
        let mut slot_edges: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); num_slots];
        for c in trace.contacts() {
            // Slot s (0-based) covers [window.start + s*delta, window.start + (s+1)*delta).
            let rel_start = c.start - window.start;
            let rel_end = c.end - window.start;
            let first_slot = (rel_start / delta).floor() as usize;
            let last_slot = ((rel_end / delta).floor() as usize).min(num_slots - 1);
            for edges in slot_edges.iter_mut().take(last_slot + 1).skip(first_slot) {
                edges.push((c.a, c.b));
            }
        }

        let slots: Vec<Slot> =
            slot_edges.into_iter().map(|edges| Slot::seal(node_count, edges)).collect();
        let busy_slots =
            slots.iter().enumerate().filter(|(_, s)| !s.edges.is_empty()).map(|(i, _)| i).collect();

        Self {
            delta,
            node_count,
            slots,
            busy_slots,
            window_start: window.start,
            window_end: window.end,
        }
    }

    /// Builds the graph with the paper's Δ = 10 s.
    pub fn build_default(trace: &ContactTrace) -> Self {
        Self::build(trace, DEFAULT_DELTA)
    }

    /// Assembles a graph from already-sealed slots — the incremental stream
    /// builder's exit path. `slots` must have one entry per Δ-slot of the
    /// window; busy-slot indices are derived here.
    pub(crate) fn from_sealed_slots(
        delta: Seconds,
        node_count: usize,
        slots: Vec<Slot>,
        window_start: Seconds,
        window_end: Seconds,
    ) -> Self {
        let busy_slots =
            slots.iter().enumerate().filter(|(_, s)| !s.is_empty()).map(|(i, _)| i).collect();
        Self { delta, node_count, slots, busy_slots, window_start, window_end }
    }

    /// Borrows slot `s` directly — the slot-local view engines hoist out of
    /// their per-slot loops so they run unchanged against windowed graphs.
    pub fn slot(&self, s: usize) -> &Slot {
        &self.slots[s]
    }

    /// The discretization step in seconds.
    pub fn delta(&self) -> Seconds {
        self.delta
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of time slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Start of the observation window in seconds.
    pub fn window_start(&self) -> Seconds {
        self.window_start
    }

    /// End of the observation window in seconds.
    pub fn window_end(&self) -> Seconds {
        self.window_end
    }

    /// The slot index containing absolute time `t`, clamped to the valid
    /// range. Slot `s` covers `[start + s·Δ, start + (s+1)·Δ)` where `start`
    /// is the trace window start — the same convention `build` slots
    /// contacts with.
    pub fn slot_of_time(&self, t: Seconds) -> usize {
        let rel = t - self.window_start;
        if rel <= 0.0 {
            return 0;
        }
        ((rel / self.delta).floor() as usize).min(self.slots.len() - 1)
    }

    /// The absolute time at which slot `s` *ends* — the timestamp assigned
    /// to hops taken during that slot (the paper's `T = c·Δ`, offset by the
    /// window start for traces that do not begin at zero).
    pub fn slot_end_time(&self, s: usize) -> Seconds {
        self.window_start + (s as f64 + 1.0) * self.delta
    }

    /// Neighbors of `node` during slot `s` (nodes in contact with it at any
    /// time during the slot).
    pub fn neighbors(&self, s: usize, node: NodeId) -> &[NodeId] {
        &self.slots[s].adjacency[node.index()]
    }

    /// True if `node` has at least one contact during slot `s`.
    pub fn has_contacts(&self, s: usize, node: NodeId) -> bool {
        !self.slots[s].adjacency[node.index()].is_empty()
    }

    /// Connected-component label of `node` in slot `s` under zero-weight
    /// (contact) edges. Two nodes with the same label can exchange a message
    /// within the slot.
    pub fn component(&self, s: usize, node: NodeId) -> u32 {
        self.slots[s].component[node.index()]
    }

    /// True if `a` and `b` can reach each other through zero-weight edges in
    /// slot `s` (they are in the same contact component and at least one of
    /// them has a contact).
    pub fn same_component(&self, s: usize, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        self.has_contacts(s, a)
            && self.has_contacts(s, b)
            && self.slots[s].component[a.index()] == self.slots[s].component[b.index()]
    }

    /// All members of `node`'s contact component in slot `s` *including*
    /// `node` itself, as a borrowed slice of the per-slot component table
    /// precomputed at build time (ascending node ids). Empty if `node` has
    /// no contacts in the slot.
    pub fn component_slice(&self, s: usize, node: NodeId) -> &[NodeId] {
        let slot = &self.slots[s];
        if slot.adjacency[node.index()].is_empty() {
            return &[];
        }
        let (start, end) = slot.spans[slot.component[node.index()] as usize];
        &slot.members[start as usize..end as usize]
    }

    /// Nodes with at least one contact in slot `s`, ascending — the only
    /// nodes a path can move to (or from) during the slot.
    pub fn active_nodes(&self, s: usize) -> &[NodeId] {
        &self.slots[s].active
    }

    /// All members of `node`'s contact component in slot `s`, excluding
    /// `node` itself. Empty if `node` has no contacts in the slot.
    ///
    /// Allocates; hot paths should use [`component_slice`](Self::component_slice)
    /// instead, which returns a borrowed slice (including `node`).
    pub fn component_members(&self, s: usize, node: NodeId) -> Vec<NodeId> {
        self.component_slice(s, node).iter().copied().filter(|&m| m != node).collect()
    }

    /// Number of contact edges in slot `s`.
    pub fn edge_count(&self, s: usize) -> usize {
        self.slots[s].edges.len()
    }

    /// The contact edges of slot `s`, normalized to `(low, high)` node order
    /// and sorted lexicographically — the same sequence an ascending scan of
    /// every node's (sorted) neighbor list yields, so consumers that replay
    /// edges in order are deterministic and match the historical full-scan
    /// behaviour of the forwarding simulator.
    pub fn edges(&self, s: usize) -> &[(NodeId, NodeId)] {
        &self.slots[s].edges
    }

    /// Indices of slots containing at least one contact edge, ascending.
    /// Slot-driven replay loops (forwarding, history construction) iterate
    /// these instead of every slot, so empty stretches of the trace cost
    /// nothing.
    pub fn busy_slots(&self) -> &[usize] {
        &self.busy_slots
    }

    /// Approximate resident size in bytes — the weight artifact stores use
    /// for byte-budget accounting. Sums the per-slot adjacency, component,
    /// edge and member structures; exact allocator overhead is not modelled
    /// (eviction budgets only need the right order of magnitude).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.busy_slots.len() * std::mem::size_of::<usize>()
            + self.slots.iter().map(Slot::approx_bytes).sum::<usize>()
    }

    /// Total number of (contact, slot) incidences — a measure of graph size
    /// used by the benchmarks.
    pub fn total_edges(&self) -> usize {
        self.slots.iter().map(|s| s.edges.len()).sum()
    }
}

/// Computes connected-component labels from an adjacency list using
/// iterative depth-first search. Nodes without edges get unique labels.
fn components_of(adjacency: &[Vec<NodeId>]) -> Vec<u32> {
    let n = adjacency.len();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        label[start] = next;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &w in &adjacency[v] {
                let wi = w.index();
                if label[wi] == u32::MAX {
                    label[wi] = next;
                    stack.push(wi);
                }
            }
        }
        next += 1;
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_trace::contact::Contact;
    use psn_trace::node::{NodeClass, NodeRegistry};
    use psn_trace::trace::TimeWindow;

    /// Builds the paper's Fig. 2 example: three nodes; 1–2 in contact during
    /// the first slot, everyone in contact during the second slot.
    fn figure2_trace(delta: f64) -> ContactTrace {
        let mut reg = NodeRegistry::new();
        for _ in 0..3 {
            reg.add(NodeClass::Mobile);
        }
        let contacts = vec![
            Contact::new(NodeId(0), NodeId(1), 0.0, delta * 0.5).unwrap(),
            Contact::new(NodeId(0), NodeId(1), delta * 1.1, delta * 1.9).unwrap(),
            Contact::new(NodeId(0), NodeId(2), delta * 1.2, delta * 1.8).unwrap(),
            Contact::new(NodeId(1), NodeId(2), delta * 1.3, delta * 1.7).unwrap(),
        ];
        ContactTrace::from_contacts("figure2", reg, TimeWindow::new(0.0, delta * 2.0), contacts)
            .unwrap()
    }

    #[test]
    fn figure2_structure() {
        let trace = figure2_trace(10.0);
        let g = SpaceTimeGraph::build_default(&trace);
        assert_eq!(g.slot_count(), 2);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.delta(), 10.0);
        // Slot 0: only 1-2 (our ids 0-1) in contact.
        assert_eq!(g.neighbors(0, NodeId(0)), &[NodeId(1)]);
        assert_eq!(g.neighbors(0, NodeId(1)), &[NodeId(0)]);
        assert!(g.neighbors(0, NodeId(2)).is_empty());
        assert_eq!(g.edge_count(0), 1);
        // Slot 1: triangle.
        assert_eq!(g.neighbors(1, NodeId(0)).len(), 2);
        assert_eq!(g.edge_count(1), 3);
        assert!(g.same_component(1, NodeId(0), NodeId(2)));
        assert!(!g.same_component(0, NodeId(0), NodeId(2)));
    }

    #[test]
    fn slot_of_time_and_end_time() {
        let trace = figure2_trace(10.0);
        let g = SpaceTimeGraph::build_default(&trace);
        assert_eq!(g.slot_of_time(0.0), 0);
        assert_eq!(g.slot_of_time(9.99), 0);
        assert_eq!(g.slot_of_time(10.0), 1);
        assert_eq!(g.slot_of_time(1e9), 1); // clamped
        assert_eq!(g.slot_end_time(0), 10.0);
        assert_eq!(g.slot_end_time(1), 20.0);
        assert_eq!(g.window_end(), 20.0);
    }

    #[test]
    fn contact_spanning_multiple_slots_appears_in_each() {
        let mut reg = NodeRegistry::new();
        reg.add(NodeClass::Mobile);
        reg.add(NodeClass::Mobile);
        let trace = ContactTrace::from_contacts(
            "span",
            reg,
            TimeWindow::new(0.0, 100.0),
            vec![Contact::new(NodeId(0), NodeId(1), 5.0, 35.0).unwrap()],
        )
        .unwrap();
        let g = SpaceTimeGraph::build_default(&trace);
        assert_eq!(g.slot_count(), 10);
        for s in 0..=3 {
            assert!(g.has_contacts(s, NodeId(0)), "slot {s}");
        }
        for s in 4..10 {
            assert!(!g.has_contacts(s, NodeId(0)), "slot {s}");
        }
        assert_eq!(g.total_edges(), 4);
    }

    #[test]
    fn duplicate_contacts_in_one_slot_are_merged() {
        let mut reg = NodeRegistry::new();
        reg.add(NodeClass::Mobile);
        reg.add(NodeClass::Mobile);
        let trace = ContactTrace::from_contacts(
            "dup",
            reg,
            TimeWindow::new(0.0, 10.0),
            vec![
                Contact::new(NodeId(0), NodeId(1), 1.0, 2.0).unwrap(),
                Contact::new(NodeId(1), NodeId(0), 3.0, 4.0).unwrap(),
            ],
        )
        .unwrap();
        let g = SpaceTimeGraph::build_default(&trace);
        assert_eq!(g.edge_count(0), 1);
        assert_eq!(g.neighbors(0, NodeId(0)), &[NodeId(1)]);
    }

    #[test]
    fn component_members_lists_reachable_nodes() {
        let trace = figure2_trace(10.0);
        let g = SpaceTimeGraph::build_default(&trace);
        let members = g.component_members(1, NodeId(0));
        assert_eq!(members, vec![NodeId(1), NodeId(2)]);
        assert!(g.component_members(0, NodeId(2)).is_empty());
        // Slot 0 component of node 0 excludes node 2.
        assert_eq!(g.component_members(0, NodeId(0)), vec![NodeId(1)]);
    }

    #[test]
    fn isolated_nodes_have_distinct_components() {
        let trace = figure2_trace(10.0);
        let g = SpaceTimeGraph::build_default(&trace);
        // In slot 0, node 2 is isolated; same_component with anyone is false.
        assert!(!g.same_component(0, NodeId(2), NodeId(0)));
        assert!(g.same_component(0, NodeId(2), NodeId(2)));
    }

    #[test]
    fn different_delta_changes_slot_count() {
        let trace = figure2_trace(10.0);
        let fine = SpaceTimeGraph::build(&trace, 5.0);
        let coarse = SpaceTimeGraph::build(&trace, 20.0);
        assert_eq!(fine.slot_count(), 4);
        assert_eq!(coarse.slot_count(), 1);
        // With one coarse slot everyone is in one component.
        assert!(coarse.same_component(0, NodeId(0), NodeId(2)));
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_delta() {
        let trace = figure2_trace(10.0);
        SpaceTimeGraph::build(&trace, 0.0);
    }

    #[test]
    fn nonzero_window_start_offsets_slot_times() {
        // Regression test: slot 0 of a window starting at t=1000 covers
        // [1000, 1010) and therefore *ends* at 1010, not at 10. Before the
        // fix `slot_end_time` returned `(s+1)·Δ` in absolute terms while
        // `build` slotted contacts relative to the window start, so every
        // delivery time in a nonzero-start trace was shifted by the start.
        let mut reg = NodeRegistry::new();
        reg.add(NodeClass::Mobile);
        reg.add(NodeClass::Mobile);
        let trace = ContactTrace::from_contacts(
            "offset-window",
            reg,
            TimeWindow::new(1000.0, 1050.0),
            vec![Contact::new(NodeId(0), NodeId(1), 1012.0, 1018.0).unwrap()],
        )
        .unwrap();
        let g = SpaceTimeGraph::build_default(&trace);
        assert_eq!(g.slot_count(), 5);
        assert_eq!(g.window_start(), 1000.0);
        // The contact lands in slot 1 ([1010, 1020)), matching `build`.
        assert!(g.has_contacts(1, NodeId(0)));
        assert!(!g.has_contacts(0, NodeId(0)));
        // Times map back through the same offset convention.
        assert_eq!(g.slot_of_time(1000.0), 0);
        assert_eq!(g.slot_of_time(1012.0), 1);
        assert_eq!(g.slot_of_time(999.0), 0); // clamped below the window
        assert_eq!(g.slot_end_time(0), 1010.0);
        assert_eq!(g.slot_end_time(1), 1020.0);
        // End-time of the contact's slot stays inside the window.
        assert!(g.slot_end_time(1) <= g.window_end());
    }

    #[test]
    fn component_slice_groups_active_nodes() {
        let trace = figure2_trace(10.0);
        let g = SpaceTimeGraph::build_default(&trace);
        // Slot 0: only nodes 0 and 1 are active, in one component.
        assert_eq!(g.active_nodes(0), &[NodeId(0), NodeId(1)]);
        assert_eq!(g.component_slice(0, NodeId(0)), &[NodeId(0), NodeId(1)]);
        assert_eq!(g.component_slice(0, NodeId(1)), &[NodeId(0), NodeId(1)]);
        assert!(g.component_slice(0, NodeId(2)).is_empty());
        // Slot 1: the full triangle, ascending.
        assert_eq!(g.active_nodes(1), &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(g.component_slice(1, NodeId(2)), &[NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn component_slice_separates_components() {
        // Two disjoint pairs in one slot: 0-1 and 2-3.
        let mut reg = NodeRegistry::new();
        for _ in 0..5 {
            reg.add(NodeClass::Mobile);
        }
        let trace = ContactTrace::from_contacts(
            "pairs",
            reg,
            TimeWindow::new(0.0, 10.0),
            vec![
                Contact::new(NodeId(0), NodeId(1), 1.0, 2.0).unwrap(),
                Contact::new(NodeId(2), NodeId(3), 3.0, 4.0).unwrap(),
            ],
        )
        .unwrap();
        let g = SpaceTimeGraph::build_default(&trace);
        assert_eq!(g.component_slice(0, NodeId(0)), &[NodeId(0), NodeId(1)]);
        assert_eq!(g.component_slice(0, NodeId(3)), &[NodeId(2), NodeId(3)]);
        assert!(g.component_slice(0, NodeId(4)).is_empty());
        assert_eq!(g.active_nodes(0), &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        // The allocating compatibility API agrees with the slices.
        assert_eq!(g.component_members(0, NodeId(0)), vec![NodeId(1)]);
    }

    #[test]
    fn slot_edges_are_normalized_sorted_and_match_adjacency_scan_order() {
        let mut reg = NodeRegistry::new();
        for _ in 0..5 {
            reg.add(NodeClass::Mobile);
        }
        // Contacts given in reversed node order and shuffled time order.
        let trace = ContactTrace::from_contacts(
            "edges",
            reg,
            TimeWindow::new(0.0, 20.0),
            vec![
                Contact::new(NodeId(4), NodeId(1), 1.0, 2.0).unwrap(),
                Contact::new(NodeId(3), NodeId(0), 3.0, 4.0).unwrap(),
                Contact::new(NodeId(1), NodeId(0), 5.0, 6.0).unwrap(),
                Contact::new(NodeId(0), NodeId(1), 7.0, 8.0).unwrap(), // duplicate pair
                Contact::new(NodeId(2), NodeId(4), 12.0, 13.0).unwrap(),
            ],
        )
        .unwrap();
        let g = SpaceTimeGraph::build_default(&trace);
        assert_eq!(
            g.edges(0),
            &[(NodeId(0), NodeId(1)), (NodeId(0), NodeId(3)), (NodeId(1), NodeId(4))]
        );
        assert_eq!(g.edges(1), &[(NodeId(2), NodeId(4))]);
        // The edge list reproduces the ascending full-adjacency scan.
        for s in 0..g.slot_count() {
            let mut scanned = Vec::new();
            for a in 0..g.node_count() as u32 {
                let a = NodeId(a);
                for &b in g.neighbors(s, a) {
                    if a.0 < b.0 {
                        scanned.push((a, b));
                    }
                }
            }
            assert_eq!(g.edges(s), scanned.as_slice(), "slot {s}");
            assert_eq!(g.edge_count(s), scanned.len());
        }
    }

    #[test]
    fn busy_slots_index_skips_empty_slots() {
        let mut reg = NodeRegistry::new();
        reg.add(NodeClass::Mobile);
        reg.add(NodeClass::Mobile);
        let trace = ContactTrace::from_contacts(
            "busy",
            reg,
            TimeWindow::new(0.0, 100.0),
            vec![
                Contact::new(NodeId(0), NodeId(1), 5.0, 8.0).unwrap(),
                Contact::new(NodeId(0), NodeId(1), 71.0, 75.0).unwrap(),
            ],
        )
        .unwrap();
        let g = SpaceTimeGraph::build_default(&trace);
        assert_eq!(g.busy_slots(), &[0, 7]);
        for (s, _) in g.busy_slots().iter().map(|&s| (s, ())) {
            assert!(g.edge_count(s) > 0);
        }
        let empty = ContactTrace::new(
            "no-contacts",
            NodeRegistry::with_counts(2, 0),
            TimeWindow::new(0.0, 50.0),
        );
        assert!(SpaceTimeGraph::build_default(&empty).busy_slots().is_empty());
    }

    #[test]
    fn empty_trace_has_empty_slots() {
        let reg = NodeRegistry::with_counts(3, 0);
        let trace = ContactTrace::new("empty", reg, TimeWindow::new(0.0, 50.0));
        let g = SpaceTimeGraph::build_default(&trace);
        assert_eq!(g.slot_count(), 5);
        assert_eq!(g.total_edges(), 0);
        assert!(!g.has_contacts(0, NodeId(0)));
    }
}
