//! Validity rules for forwarding paths.
//!
//! Section 4.1 of the paper restricts attention to paths any reasonable
//! forwarding algorithm could produce:
//!
//! * **Loop avoidance** — no node appears more than once on a path;
//! * **Minimal progress** — a node holding a message delivers it whenever it
//!   encounters the destination, so the destination appears only as the
//!   final hop;
//! * **First preference** — if an intermediate node on the path encountered
//!   the destination *before* the path's delivery time, the path is not one
//!   a minimal-progress algorithm would take and is excluded.
//!
//! [`is_valid_path`] checks a complete path against all three rules relative
//! to a space-time graph and destination; the enumerator enforces the same
//! rules incrementally for efficiency.

use psn_trace::NodeId;

use crate::path::Path;
use crate::windowed::GraphRef;

/// The reason a path failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// A node appears more than once.
    Loop,
    /// The destination appears before the final hop.
    DestinationNotLast,
    /// An intermediate holder met the destination before the delivery time
    /// (first-preference violation).
    FirstPreference,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Loop => write!(f, "path revisits a node"),
            Violation::DestinationNotLast => {
                write!(f, "destination appears before the final hop")
            }
            Violation::FirstPreference => {
                write!(f, "an intermediate holder met the destination earlier")
            }
        }
    }
}

/// Checks a path against the loop-avoidance and minimal-progress rules only
/// (no space-time graph needed).
pub fn check_structure(path: &Path, destination: NodeId) -> Result<(), Violation> {
    if !path.is_loop_free() {
        return Err(Violation::Loop);
    }
    let hops = path.hops();
    for hop in &hops[..hops.len().saturating_sub(1)] {
        if hop.node == destination {
            return Err(Violation::DestinationNotLast);
        }
    }
    Ok(())
}

/// Checks a complete path against all three validity rules.
///
/// The first-preference check walks each holding interval: node `xᵢ` holds
/// the message from its own hop time until the next hop's time (or the
/// path's end time for the final holder), and must not share a slot contact
/// component with the destination strictly before the path's delivery time.
pub fn is_valid_path<'a>(
    graph: impl Into<GraphRef<'a>>,
    path: &Path,
    destination: NodeId,
) -> Result<(), Violation> {
    let graph = graph.into();
    check_structure(path, destination)?;

    let hops = path.hops();
    let delivery_time = path.end_time();
    let delivered = path.current_node() == destination;

    // For each holder (every hop except a final destination hop), scan the
    // slots from when it received the message until the path's delivery
    // time. Nodes hold messages forever (infinite buffers), so a holder that
    // meets the destination at any point before the delivery time dominates
    // this path, even if the path itself moved on earlier.
    let holder_count = if delivered { hops.len() - 1 } else { hops.len() };
    for hop in hops.iter().take(holder_count) {
        let holder = hop.node;
        if holder == destination {
            continue;
        }
        let hold_start = hop.time;
        let hold_end = delivery_time;
        let first_slot = graph.slot_of_time(hold_start);
        let last_slot = graph.slot_of_time(hold_end);
        for s in first_slot..=last_slot {
            let meet_time = graph.slot_end_time(s);
            if meet_time >= delivery_time {
                // Meeting the destination at or after the delivery time does
                // not dominate this path.
                break;
            }
            if graph.slot(s).same_component(holder, destination) && holder != destination {
                return Err(Violation::FirstPreference);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SpaceTimeGraph;
    use psn_trace::contact::Contact;
    use psn_trace::node::{NodeClass, NodeRegistry};
    use psn_trace::trace::{ContactTrace, TimeWindow};

    fn nid(v: u32) -> NodeId {
        NodeId(v)
    }

    /// Four nodes over 5 slots (Δ=10):
    /// slot 0: 0-1 in contact
    /// slot 1: 1-3 in contact   (node 1 meets the destination 3 early)
    /// slot 2: 1-2 in contact
    /// slot 3: 2-3 in contact
    fn graph() -> SpaceTimeGraph {
        let mut reg = NodeRegistry::new();
        for _ in 0..4 {
            reg.add(NodeClass::Mobile);
        }
        let contacts = vec![
            Contact::new(nid(0), nid(1), 1.0, 5.0).unwrap(),
            Contact::new(nid(1), nid(3), 11.0, 15.0).unwrap(),
            Contact::new(nid(1), nid(2), 21.0, 25.0).unwrap(),
            Contact::new(nid(2), nid(3), 31.0, 35.0).unwrap(),
        ];
        let trace =
            ContactTrace::from_contacts("validity", reg, TimeWindow::new(0.0, 50.0), contacts)
                .unwrap();
        SpaceTimeGraph::build_default(&trace)
    }

    #[test]
    fn looping_path_is_rejected() {
        let g = graph();
        let p = Path::source(nid(0), 0.0).extended(nid(1), 10.0).extended(nid(0), 20.0);
        assert_eq!(is_valid_path(&g, &p, nid(3)), Err(Violation::Loop));
    }

    #[test]
    fn destination_must_be_last() {
        let g = graph();
        let p = Path::source(nid(3), 0.0).extended(nid(1), 20.0);
        assert_eq!(is_valid_path(&g, &p, nid(3)), Err(Violation::DestinationNotLast));
    }

    #[test]
    fn direct_delivery_is_valid() {
        let g = graph();
        // 0 -> 1 in slot 0, 1 -> 3 in slot 1: the first-preference path.
        let p = Path::source(nid(0), 0.0).extended(nid(1), 10.0).extended(nid(3), 20.0);
        assert_eq!(is_valid_path(&g, &p, nid(3)), Ok(()));
    }

    #[test]
    fn holding_past_a_destination_contact_violates_first_preference() {
        let g = graph();
        // Node 1 receives at slot 0 (t=10), meets 3 at slot 1 (t=20) but the
        // path instead forwards to 2 at slot 2 and delivers at slot 3 (t=40).
        let p = Path::source(nid(0), 0.0)
            .extended(nid(1), 10.0)
            .extended(nid(2), 30.0)
            .extended(nid(3), 40.0);
        assert_eq!(is_valid_path(&g, &p, nid(3)), Err(Violation::FirstPreference));
    }

    #[test]
    fn undelivered_path_held_by_node_that_met_destination_is_invalid() {
        let g = graph();
        // Node 1 holds the message from t=10 onward and never delivers even
        // though it meets node 3 at slot 1; such a path cannot be produced by
        // a minimal-progress algorithm once time passes slot 1.
        let p = Path::source(nid(0), 0.0).extended(nid(1), 10.0).extended(nid(2), 30.0);
        assert_eq!(is_valid_path(&g, &p, nid(3)), Err(Violation::FirstPreference));
    }

    #[test]
    fn source_only_path_is_valid() {
        let g = graph();
        let p = Path::source(nid(0), 0.0);
        assert_eq!(is_valid_path(&g, &p, nid(3)), Ok(()));
    }

    #[test]
    fn structure_check_does_not_need_graph() {
        let p = Path::source(nid(0), 0.0).extended(nid(1), 10.0);
        assert_eq!(check_structure(&p, nid(3)), Ok(()));
        let bad = Path::source(nid(3), 0.0).extended(nid(1), 10.0);
        assert_eq!(check_structure(&bad, nid(3)), Err(Violation::DestinationNotLast));
    }

    #[test]
    fn violation_display() {
        for v in [Violation::Loop, Violation::DestinationNotLast, Violation::FirstPreference] {
            assert!(!v.to_string().is_empty());
        }
    }
}
