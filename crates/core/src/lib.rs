//! # psn — Diversity of Forwarding Paths in Pocket Switched Networks
//!
//! This crate is the public face of the reproduction of Erramilli,
//! Chaintreau, Crovella & Diot, *"Diversity of Forwarding Paths in Pocket
//! Switched Networks"* (2007): a toolkit for studying the set of
//! time-respecting forwarding paths available in human-contact (pocket
//! switched) networks, the *path explosion* phenomenon, and its consequences
//! for DTN forwarding algorithms.
//!
//! ## What it provides
//!
//! * synthetic conference contact traces (and a parser for real ones) —
//!   re-exported from [`psn_trace`];
//! * space-time graph construction and k-shortest valid-path enumeration —
//!   re-exported from [`psn_spacetime`];
//! * the homogeneous/inhomogeneous analytic models of path explosion —
//!   re-exported from [`psn_analytic`];
//! * a trace-driven forwarding simulator with the paper's six algorithms —
//!   re-exported from [`psn_forwarding`];
//! * **experiment drivers** ([`experiments`]) that regenerate the data
//!   behind every figure in the paper's evaluation as **typed sections**;
//! * the **typed report model** ([`report`]): `ReportDoc`s of schema'd
//!   tables, series and scalars with pluggable renderers — golden-pinned
//!   text, parseable JSON, per-table CSV;
//! * the **study pipeline** ([`study`]): `StudySpec` → `StudyPlan` →
//!   `StudyReport`, a registry of named studies that run over any
//!   declarative [`psn_trace::ScenarioConfig`] (community-structured,
//!   scaled populations, …), first-class scenario sweeps
//!   ([`study::sweep`]), plus the figure presets the `psn-study` CLI and
//!   the golden-file tests are built on.
//!
//! ## Quick start
//!
//! ```
//! use psn::prelude::*;
//!
//! // A reduced-scale synthetic stand-in for the Infocom'06 morning trace.
//! let dataset = SyntheticDataset::quick_config(DatasetId::Infocom06Morning);
//! let trace = dataset.generate();
//!
//! // Enumerate forwarding paths for one message and look at its explosion
//! // profile.
//! let graph = SpaceTimeGraph::build_default(&trace);
//! let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(50));
//! let message = Message::new(NodeId(0), NodeId(5), 60.0);
//! let result = enumerator.enumerate(&message);
//! let profile = ExplosionProfile::with_threshold(&result, 50);
//! println!("optimal duration: {:?}", profile.optimal_duration);
//! ```
//!
//! The `examples/` directory contains runnable end-to-end scenarios and the
//! `psn-bench` crate's `psn-study` CLI regenerates every figure from a
//! preset or any scenario config file (see DESIGN.md for the experiment
//! index).

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]

pub mod config;
pub mod experiments;
pub mod report;
pub mod study;

pub use config::ExperimentProfile;
pub use report::{ReportDoc, ReportFormat};
pub use study::sweep::{
    run_sweep, run_sweep_with, run_sweep_with_policy, SweepPlan, SweepReport, SweepSpec,
};
pub use study::{
    ArtifactError, ArtifactStore, CacheSource, CellFailure, RunPolicy, StudyError, StudyId,
    StudyPlan, StudyReport, StudySpec, StudyView,
};

/// Convenient re-exports of the most commonly used types across the
/// workspace.
pub mod prelude {
    pub use crate::config::ExperimentProfile;
    pub use crate::experiments;
    pub use psn_analytic::{HomogeneousModel, PairClass, TwoClassModel};
    pub use psn_forwarding::{
        standard_algorithms, AlgorithmKind, AlgorithmMetrics, PairType, SimulationResult,
        Simulator, SimulatorConfig,
    };
    pub use psn_spacetime::{
        epidemic_delivery_time, EnumerationConfig, EnumerationScratch, ExplosionProfile,
        ExplosionSummary, Message, MessageGenerator, MessageWorkloadConfig, Path, PathEnumerator,
        SpaceTimeGraph,
    };
    pub use psn_stats::{BoxPlot, ConfidenceInterval, Ecdf, Histogram, Summary};
    pub use psn_trace::{
        ContactRates, ContactTrace, DatasetId, NodeClass, NodeId, RateClass, SyntheticDataset,
    };
}
