//! Typed experiment reports and their pluggable renderers.
//!
//! Historically this module was fifteen `render_*(…) -> String` functions
//! and every study stored exact output bytes per section. It is now a
//! **value model** ([`model`]): studies build [`ReportDoc`]s out of
//! schema'd [`Table`]s, [`Series`] and [`Scalar`]s (column names, number
//! formats, units, run metadata), and rendering is a backend choice
//! ([`render`]):
//!
//! * [`TextRenderer`] reproduces the historical plain-text/CSV stream
//!   byte-for-byte (golden-pinned);
//! * [`JsonRenderer`] emits the parseable `psn-report/1` schema;
//! * [`CsvRenderer`] writes one file per table.
//!
//! The section *builders* live with the experiment drivers (e.g.
//! [`crate::experiments::forwarding::ForwardingStudy::delay_vs_success_section`]);
//! the legacy `render_*` helpers below are retained as thin text-backend
//! wrappers so examples and integration tests keep working unchanged.

pub mod model;
pub mod render;

pub use model::{
    slug, Block, CellValue, Column, NumberFormat, ReportDoc, RunMeta, Scalar, Section, Series,
    Table, TableStyle,
};
pub use render::{Artifact, CsvRenderer, JsonRenderer, Renderer, ReportFormat, TextRenderer};

use psn_stats::Ecdf;

use crate::experiments::activity::ActivityReport;
use crate::experiments::explosion::ExplosionStudy;
use crate::experiments::forwarding::ForwardingStudy;
use crate::experiments::hop_rates::HopRateStudy;
use crate::experiments::model::ModelValidation;
use crate::experiments::paths_taken::PathsTakenCase;

fn text_of(section: &Section) -> String {
    TextRenderer.render_section(section)
}

/// Renders an ECDF as `value,cumulative_probability` rows, down-sampled to
/// at most `max_points` points (see [`Series::downsample`] for the exact
/// thinning rule).
pub fn render_cdf(name: &str, cdf: &Ecdf, max_points: usize) -> String {
    TextRenderer.render_series(&Series::from_ecdf(name, cdf).downsample(max_points))
}

/// Renders the Fig. 1 contact time series of one dataset.
pub fn render_activity(report: &ActivityReport) -> String {
    text_of(&report.timeseries_section())
}

/// Renders the Fig. 7 per-node contact-count CDF of one dataset.
pub fn render_contact_cdf(report: &ActivityReport) -> String {
    text_of(&report.contact_cdf_section())
}

/// Renders the Fig. 4 CDFs (optimal path duration, time to explosion).
pub fn render_explosion_cdfs(study: &ExplosionStudy) -> String {
    text_of(&study.cdfs_section())
}

/// Renders the Fig. 5 scatter of optimal duration vs time to explosion.
pub fn render_explosion_scatter(study: &ExplosionStudy) -> String {
    text_of(&study.scatter_section())
}

/// Renders the Fig. 6 growth histogram for slow-explosion messages.
pub fn render_explosion_growth(study: &ExplosionStudy) -> String {
    text_of(&study.growth_section())
}

/// Renders the Fig. 8 pair-type scatter panels.
pub fn render_pairtype_scatter(study: &ExplosionStudy) -> String {
    text_of(&study.pair_type_section())
}

/// Renders the Fig. 9 success-rate vs average-delay table for one dataset.
pub fn render_delay_vs_success(study: &ForwardingStudy) -> String {
    text_of(&study.delay_vs_success_section())
}

/// Renders the Fig. 10 delay distributions for one dataset.
pub fn render_delay_distributions(study: &ForwardingStudy) -> String {
    text_of(&study.delay_distributions_section())
}

/// Renders the Fig. 11 cumulative reception series (per algorithm).
pub fn render_reception_times(study: &ForwardingStudy) -> String {
    text_of(&study.reception_times_section())
}

/// Renders one Fig. 12 case (path bursts + algorithm arrivals).
pub fn render_paths_taken(case: &PathsTakenCase) -> String {
    text_of(&case.section())
}

/// Renders the Fig. 13 pair-type performance breakdown for one dataset.
pub fn render_pairtype_performance(study: &ForwardingStudy) -> String {
    text_of(&study.pair_type_section())
}

/// Renders the Fig. 14 per-hop mean rates with confidence intervals.
pub fn render_hop_rates(study: &HopRateStudy) -> String {
    text_of(&study.mean_rate_section())
}

/// Renders the Fig. 15 per-hop rate-ratio box plots.
pub fn render_rate_ratios(study: &HopRateStudy) -> String {
    text_of(&study.rate_ratio_section())
}

/// Renders the §5.1 model-validation summary.
pub fn render_model_validation(validation: &ModelValidation) -> String {
    text_of(&validation.section())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::config::ExperimentProfile;
    use crate::experiments::activity::{activity_report, run_activity_study};
    use psn_trace::DatasetId;

    #[test]
    fn cdf_rendering_is_csv_like() {
        let cdf = Ecdf::new(&[1.0, 2.0, 2.0, 5.0]).unwrap();
        let text = render_cdf("test", &cdf, 10);
        assert!(text.contains("value,probability"));
        assert!(text.contains("5.000,1.0000"));
        assert!(text.starts_with("# test: 4 samples"));
    }

    #[test]
    fn activity_rendering_contains_every_minute() {
        let reports = run_activity_study(ExperimentProfile::Quick);
        let text = render_activity(&reports[0]);
        assert!(text.contains("Figure 1"));
        assert!(text.contains("minute,contacts"));
        let lines = text.lines().count();
        // Header lines + 60 one-minute bins for the quick one-hour window.
        assert!(lines >= 60, "only {lines} lines");
        let cdf_text = render_contact_cdf(&reports[0]);
        assert!(cdf_text.contains("Figure 7"));
    }

    #[test]
    fn activity_report_for_custom_trace() {
        let trace = ExperimentProfile::Quick.dataset(DatasetId::Conext06Morning).generate();
        let report = activity_report(DatasetId::Conext06Morning, &trace);
        let text = render_activity(&report);
        assert!(text.contains("Conext06 9-12"));
    }

    #[test]
    fn typed_sections_carry_machine_readable_stats() {
        let reports = run_activity_study(ExperimentProfile::Quick);
        let section = reports[0].timeseries_section();
        let names: Vec<&str> = section.scalars().iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"cv"), "{names:?}");
        assert!(names.contains(&"tail_ratio"), "{names:?}");
    }
}
