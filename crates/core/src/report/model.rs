//! The typed report value model.
//!
//! Every study produces a [`ReportDoc`]: an ordered list of [`Section`]s
//! whose contents are *values* — schema'd [`Table`]s, two-column
//! [`Series`], and named [`Scalar`]s, each carrying column names, number
//! formats and optional units — rather than pre-rendered text. Rendering is
//! the job of the pluggable backends in [`crate::report::render`]:
//! `TextRenderer` reproduces the historical plain-text/CSV stream
//! byte-for-byte (pinned by the golden preset tests), `JsonRenderer` emits
//! a parseable schema for downstream tooling, and `CsvRenderer` writes one
//! file per table.
//!
//! Presentation details the legacy text format needs (figure titles with
//! embedded statistics, `##` subsection headings, free-form `#` notes) are
//! modelled as explicit [`Block`]s so the text renderer stays a dumb
//! walker. Statistics that the title string embeds are *also* stored as
//! typed [`Section::stats`] scalars, which sweep summaries and JSON
//! consumers read without re-parsing our own output.

use psn_stats::Ecdf;

/// How a floating-point value is formatted by the text and CSV renderers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumberFormat {
    /// Fixed-point with the given number of decimals (`{:.n}`).
    Fixed(usize),
    /// Rust's shortest `Display` form (`{}`) — integers print without a
    /// decimal point.
    Display,
}

impl NumberFormat {
    /// Formats a float according to this format.
    pub fn format(&self, value: f64) -> String {
        match self {
            NumberFormat::Fixed(decimals) => format!("{:.*}", *decimals, value),
            NumberFormat::Display => format!("{value}"),
        }
    }
}

/// One column of a [`Table`] or one axis of a [`Series`].
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name, emitted in CSV-style header rows.
    pub name: String,
    /// Optional physical unit (e.g. `"s"`), carried for consumers; the
    /// text renderer never prints it (legacy column names embed units).
    pub unit: Option<String>,
    /// Number format applied to [`CellValue::Float`] cells.
    pub format: NumberFormat,
}

impl Column {
    /// A float column with fixed-point formatting.
    pub fn fixed(name: impl Into<String>, decimals: usize) -> Self {
        Self { name: name.into(), unit: None, format: NumberFormat::Fixed(decimals) }
    }

    /// A float column formatted with `{}` (shortest form).
    pub fn display(name: impl Into<String>) -> Self {
        Self { name: name.into(), unit: None, format: NumberFormat::Display }
    }

    /// An integer column.
    pub fn int(name: impl Into<String>) -> Self {
        Self::display(name)
    }

    /// A text column.
    pub fn text(name: impl Into<String>) -> Self {
        Self::display(name)
    }

    /// Attaches a unit to the column.
    pub fn with_unit(mut self, unit: impl Into<String>) -> Self {
        self.unit = Some(unit.into());
        self
    }
}

/// One typed cell of a table row.
#[derive(Debug, Clone, PartialEq)]
pub enum CellValue {
    /// A float, formatted according to the column's [`NumberFormat`].
    Float(f64),
    /// An integer, always formatted with `{}`.
    Int(u64),
    /// A label.
    Text(String),
    /// A missing value — rendered `-` in text, `null` in JSON, empty in
    /// CSV.
    Missing,
}

impl CellValue {
    /// A float cell that is missing when `value` is `None`.
    pub fn opt_float(value: Option<f64>) -> Self {
        value.map_or(CellValue::Missing, CellValue::Float)
    }

    /// Renders the cell for the text and CSV backends.
    pub fn render(&self, format: NumberFormat) -> String {
        match self {
            CellValue::Float(v) => format.format(*v),
            CellValue::Int(v) => v.to_string(),
            CellValue::Text(t) => t.clone(),
            CellValue::Missing => "-".to_string(),
        }
    }
}

/// How the text renderer lays a table out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableStyle {
    /// CSV-style: a header row of column names, then one comma-joined row
    /// per entry.
    Csv,
    /// The Fig. 15 box-plot line style: no header; each row must follow the
    /// column schema `label, n, min, q1, med, q3, max, whisker_low,
    /// whisker_high, outliers` and renders as
    /// `label: n=… min=… q1=… med=… q3=… max=… whiskers=[…,…] outliers=…`.
    BoxPlotLines,
}

/// A schema'd table: named columns with formats/units plus typed rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Machine-readable table name (CSV file naming, JSON); never rendered
    /// in text.
    pub name: String,
    /// Text layout style.
    pub style: TableStyle,
    /// Column schema.
    pub columns: Vec<Column>,
    /// Rows; every row has exactly one cell per column.
    pub rows: Vec<Vec<CellValue>>,
}

impl Table {
    /// Creates an empty CSV-style table.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        Self { name: name.into(), style: TableStyle::Csv, columns, rows: Vec::new() }
    }

    /// Switches the table to the box-plot line style.
    pub fn with_style(mut self, style: TableStyle) -> Self {
        self.style = style;
        self
    }

    /// Appends a row; panics if the cell count does not match the schema.
    pub fn push_row(&mut self, row: Vec<CellValue>) {
        assert_eq!(row.len(), self.columns.len(), "table {:?}: row/column mismatch", self.name);
        self.rows.push(row);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A two-column series of `(x, y)` float points (CDFs, time series,
/// scatters).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series name. The text renderer prints it only in the
    /// `# name: N samples` caption (when [`Series::samples`] is set); CSV
    /// uses it for file naming.
    pub name: String,
    /// Number of underlying samples, when the series is a down-sampled view
    /// of a distribution (ECDFs). `None` for exact series.
    pub samples: Option<usize>,
    /// X-axis column.
    pub x: Column,
    /// Y-axis column.
    pub y: Column,
    /// The points, in presentation order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from explicit points.
    pub fn new(name: impl Into<String>, x: Column, y: Column, points: Vec<(f64, f64)>) -> Self {
        Self { name: name.into(), samples: None, x, y, points }
    }

    /// Builds the step-function series of an ECDF with the legacy
    /// `value,probability` schema, recording the sample count for the
    /// `# name: N samples` caption.
    pub fn from_ecdf(name: impl Into<String>, cdf: &Ecdf) -> Self {
        Self {
            name: name.into(),
            samples: Some(cdf.len()),
            x: Column::fixed("value", 3),
            y: Column::fixed("probability", 4),
            points: cdf.step_points(),
        }
    }

    /// Thins the series to roughly `max_points` points — **the** ECDF
    /// down-sampling rule all renderers share (formerly private to the text
    /// `render_cdf`): with `step = max(len / max(max_points, 1), 1)`, a
    /// point is kept iff its index is a multiple of `step` or it is the
    /// last point. The output can therefore slightly exceed `max_points`,
    /// exactly as the legacy renderer did.
    pub fn downsample(mut self, max_points: usize) -> Self {
        let len = self.points.len();
        let step = (len / max_points.max(1)).max(1);
        self.points = self
            .points
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % step == 0 || i + 1 == len)
            .map(|(_, p)| p)
            .collect();
        self
    }

    /// Number of points currently held.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// A named scalar statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct Scalar {
    /// Statistic name; the text renderer prints `# name: value`.
    pub name: String,
    /// The value.
    pub value: f64,
    /// Optional unit, carried for consumers.
    pub unit: Option<String>,
    /// Number format.
    pub format: NumberFormat,
}

impl Scalar {
    /// A fixed-point scalar.
    pub fn fixed(name: impl Into<String>, value: f64, decimals: usize) -> Self {
        Self { name: name.into(), value, unit: None, format: NumberFormat::Fixed(decimals) }
    }

    /// A `{}`-formatted scalar.
    pub fn display(name: impl Into<String>, value: f64) -> Self {
        Self { name: name.into(), value, unit: None, format: NumberFormat::Display }
    }

    /// Attaches a unit.
    pub fn with_unit(mut self, unit: impl Into<String>) -> Self {
        self.unit = Some(unit.into());
        self
    }

    /// The formatted value.
    pub fn render_value(&self) -> String {
        self.format.format(self.value)
    }
}

/// One content block of a section.
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// The section's display title; text renders `# title`.
    Title(String),
    /// A `##` subsection heading.
    Heading(String),
    /// A free-form comment line; text renders `# note`.
    Note(String),
    /// A named scalar; text renders `# name: value`.
    Scalar(Scalar),
    /// A table.
    Table(Table),
    /// A series.
    Series(Series),
}

/// Generator metadata of the run a section belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// Scenario family tag (`conference`, `community`, …).
    pub scenario_kind: String,
    /// Generator seed.
    pub seed: u64,
    /// Node count.
    pub nodes: usize,
    /// Observation-window length in seconds.
    pub window_seconds: f64,
}

/// One report section — the typed counterpart of what one `(run, view)`
/// pair used to render as text.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Section {
    /// Label of the run (scenario) the section describes; empty for
    /// scenario-less studies.
    pub scenario: String,
    /// View slug (`StudyView::name()`), assigned by the study pipeline.
    pub view: String,
    /// Generator metadata of the run, when the section belongs to one.
    pub run: Option<RunMeta>,
    /// Typed statistics that the title string embeds for display. The text
    /// renderer does not print these (the title already shows them); JSON
    /// and sweep summaries consume them directly.
    pub stats: Vec<Scalar>,
    /// The content blocks, in presentation order.
    pub blocks: Vec<Block>,
}

impl Section {
    /// Creates an empty, untagged section (the study pipeline tags it with
    /// scenario, view and run metadata).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a block.
    pub fn block(mut self, block: Block) -> Self {
        self.blocks.push(block);
        self
    }

    /// Appends a typed statistic.
    pub fn stat(mut self, stat: Scalar) -> Self {
        self.stats.push(stat);
        self
    }

    /// All scalar values of the section: the typed stats followed by every
    /// scalar block, in order. Sweep summaries build their per-cell columns
    /// from this.
    pub fn scalars(&self) -> Vec<&Scalar> {
        self.stats
            .iter()
            .chain(self.blocks.iter().filter_map(|b| match b {
                Block::Scalar(s) => Some(s),
                _ => None,
            }))
            .collect()
    }
}

/// A complete typed report: the executed result of a study (or sweep),
/// ready for any renderer.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportDoc {
    /// Name of the study that produced the report.
    pub study: String,
    /// Sections in presentation order.
    pub sections: Vec<Section>,
}

impl ReportDoc {
    /// Creates an empty report for `study`.
    pub fn new(study: impl Into<String>) -> Self {
        Self { study: study.into(), sections: Vec::new() }
    }

    /// The sections belonging to one scenario label.
    pub fn sections_for(&self, scenario: &str) -> Vec<&Section> {
        self.sections.iter().filter(|s| s.scenario == scenario).collect()
    }
}

/// Lower-cases and hyphenates a label for use in file names (CSV
/// artifacts): alphanumerics pass through, everything else collapses to a
/// single `-`.
pub fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut pending_dash = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            if pending_dash && !out.is_empty() {
                out.push('-');
            }
            pending_dash = false;
            out.push(c.to_ascii_lowercase());
        } else {
            pending_dash = true;
        }
    }
    if out.is_empty() {
        "x".to_string()
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn number_formats_match_legacy_format_strings() {
        assert_eq!(NumberFormat::Fixed(3).format(0.125), "0.125");
        assert_eq!(NumberFormat::Fixed(0).format(61.4), "61");
        assert_eq!(NumberFormat::Fixed(1).format(2.0), "2.0");
        // `Display` matches `{}` on f64: integral values drop the point.
        assert_eq!(NumberFormat::Display.format(12.0), "12");
        assert_eq!(NumberFormat::Display.format(0.02), "0.02");
    }

    #[test]
    fn cells_render_like_the_legacy_text() {
        assert_eq!(CellValue::Float(1.25).render(NumberFormat::Fixed(1)), "1.2");
        assert_eq!(CellValue::Int(7).render(NumberFormat::Fixed(5)), "7");
        assert_eq!(CellValue::Text("Epidemic".into()).render(NumberFormat::Display), "Epidemic");
        assert_eq!(CellValue::Missing.render(NumberFormat::Fixed(1)), "-");
        assert_eq!(CellValue::opt_float(None), CellValue::Missing);
        assert_eq!(CellValue::opt_float(Some(2.0)), CellValue::Float(2.0));
    }

    #[test]
    fn downsample_pins_the_legacy_thinning_rule() {
        let points: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, i as f64 / 10.0)).collect();
        let series = Series::new("s", Column::fixed("x", 3), Column::fixed("y", 4), points);

        // step = max(10 / 4, 1) = 2 → indices 0,2,4,6,8 plus the forced
        // last point 9: six points survive, slightly over max_points — the
        // rule `render_cdf` always used.
        let thinned = series.clone().downsample(4);
        let xs: Vec<f64> = thinned.points.iter().map(|p| p.0).collect();
        assert_eq!(xs, vec![0.0, 2.0, 4.0, 6.0, 8.0, 9.0]);

        // More budget than points: everything survives.
        assert_eq!(series.clone().downsample(100).points.len(), 10);
        // A zero budget behaves like a budget of one (step = len).
        let xs: Vec<f64> = series.downsample(0).points.iter().map(|p| p.0).collect();
        assert_eq!(xs, vec![0.0, 9.0]);
    }

    #[test]
    fn ecdf_series_uses_the_legacy_cdf_schema() {
        let cdf = Ecdf::new(&[1.0, 2.0, 2.0, 5.0]).unwrap();
        let series = Series::from_ecdf("test", &cdf);
        assert_eq!(series.samples, Some(4));
        assert_eq!(series.x.name, "value");
        assert_eq!(series.y.name, "probability");
        assert_eq!(series.points, cdf.step_points());
    }

    #[test]
    fn table_rejects_schema_mismatches() {
        let mut table = Table::new("t", vec![Column::text("a"), Column::fixed("b", 1)]);
        table.push_row(vec![CellValue::Text("x".into()), CellValue::Float(1.0)]);
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            table.push_row(vec![CellValue::Missing]);
        }));
        assert!(result.is_err(), "short row must panic");
    }

    #[test]
    fn section_scalars_concatenate_stats_and_scalar_blocks() {
        let section = Section::new()
            .stat(Scalar::fixed("cv", 0.5, 3))
            .block(Block::Title("t".into()))
            .block(Block::Scalar(Scalar::fixed("spread", 0.1, 3)));
        let names: Vec<&str> = section.scalars().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["cv", "spread"]);
    }

    #[test]
    fn slugs_are_filename_safe() {
        assert_eq!(slug("Infocom06 9-12"), "infocom06-9-12");
        assert_eq!(slug("delay (s)"), "delay-s");
        assert_eq!(slug("  __ "), "x");
        assert_eq!(slug("Greedy Total"), "greedy-total");
    }
}
