//! The plain-text backend — byte-for-byte compatible with the historical
//! `render_*` string renderers.
//!
//! The layout contract (pinned by the golden preset tests in `psn-bench`):
//!
//! * [`Block::Title`] and [`Block::Note`] render as `# text`;
//! * [`Block::Heading`] renders as `## text`;
//! * [`Block::Scalar`] renders as `# name: value`;
//! * CSV-style tables render a header row of column names followed by one
//!   comma-joined row per entry, each cell formatted by its column's
//!   [`NumberFormat`]; missing cells render `-`;
//! * [`TableStyle::BoxPlotLines`] tables render the Fig. 15 per-row line
//!   `label: n=… min=… q1=… med=… q3=… max=… whiskers=[…,…] outliers=…`;
//! * series render an optional `# name: N samples` caption, then the
//!   `x,y` header and the points;
//! * [`Section::stats`] are **not** printed — the section title embeds
//!   them for display; and
//! * sections of a document are separated by one blank line (every legacy
//!   section body ended with one).

use std::fmt::Write as _;

use crate::report::model::{Block, ReportDoc, Section, Series, Table, TableStyle};
use crate::report::render::{Artifact, Renderer};

/// The plain-text renderer.
#[derive(Debug, Clone, Copy, Default)]
pub struct TextRenderer;

impl TextRenderer {
    /// Renders a whole document: the sections in order, each followed by a
    /// blank separator line.
    pub fn render_text(&self, doc: &ReportDoc) -> String {
        doc.sections.iter().map(|s| format!("{}\n", self.render_section(s))).collect()
    }

    /// Renders one section (no trailing blank line) — exactly the string
    /// the legacy per-view renderer returned.
    pub fn render_section(&self, section: &Section) -> String {
        let mut out = String::new();
        for block in &section.blocks {
            match block {
                Block::Title(text) | Block::Note(text) => {
                    let _ = writeln!(out, "# {text}");
                }
                Block::Heading(text) => {
                    let _ = writeln!(out, "## {text}");
                }
                Block::Scalar(scalar) => {
                    let _ = writeln!(out, "# {}: {}", scalar.name, scalar.render_value());
                }
                Block::Table(table) => out.push_str(&self.render_table(table)),
                Block::Series(series) => out.push_str(&self.render_series(series)),
            }
        }
        out
    }

    /// Renders one table.
    pub fn render_table(&self, table: &Table) -> String {
        match table.style {
            TableStyle::Csv => self.render_csv_table(table),
            TableStyle::BoxPlotLines => self.render_boxplot_table(table),
        }
    }

    fn render_csv_table(&self, table: &Table) -> String {
        let mut out = String::new();
        let names: Vec<&str> = table.columns.iter().map(|c| c.name.as_str()).collect();
        let _ = writeln!(out, "{}", names.join(","));
        for row in &table.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&table.columns)
                .map(|(cell, column)| cell.render(column.format))
                .collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    fn render_boxplot_table(&self, table: &Table) -> String {
        // The line template needs the exact 10-column box-plot schema
        // (label, n, min, q1, med, q3, max, whisker_low, whisker_high,
        // outliers). Anything else — e.g. a hand-written document fed
        // through `JsonRenderer::parse` — degrades to CSV layout rather
        // than panicking on valid input.
        if table.columns.len() != 10 {
            return self.render_csv_table(table);
        }
        let mut out = String::new();
        for row in &table.rows {
            let c: Vec<String> = row
                .iter()
                .zip(&table.columns)
                .map(|(cell, column)| cell.render(column.format))
                .collect();
            let _ = writeln!(
                out,
                "{}: n={} min={} q1={} med={} q3={} max={} whiskers=[{},{}] outliers={}",
                c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7], c[8], c[9]
            );
        }
        out
    }

    /// Renders one series (caption, header, points).
    pub fn render_series(&self, series: &Series) -> String {
        let mut out = String::new();
        if let Some(samples) = series.samples {
            let _ = writeln!(out, "# {}: {} samples", series.name, samples);
        }
        let _ = writeln!(out, "{},{}", series.x.name, series.y.name);
        for &(x, y) in &series.points {
            let _ = writeln!(out, "{},{}", series.x.format.format(x), series.y.format.format(y));
        }
        out
    }
}

impl Renderer for TextRenderer {
    fn format_name(&self) -> &'static str {
        "text"
    }

    fn render(&self, doc: &ReportDoc) -> Vec<Artifact> {
        vec![Artifact { filename: "report.txt".to_string(), contents: self.render_text(doc) }]
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::report::model::{CellValue, Column, Scalar};
    use psn_stats::BoxPlot;

    #[test]
    fn blocks_render_the_legacy_layout() {
        let mut table =
            Table::new("t", vec![Column::text("algorithm"), Column::fixed("success_rate", 3)]);
        table.push_row(vec![CellValue::Text("Epidemic".into()), CellValue::Float(0.75)]);
        table.push_row(vec![CellValue::Text("Fresh".into()), CellValue::Missing]);
        let section = Section::new()
            .stat(Scalar::fixed("hidden", 1.0, 3))
            .block(Block::Title("Figure 9 — example".into()))
            .block(Block::Table(table))
            .block(Block::Scalar(Scalar::fixed("spread", 0.125, 3)))
            .block(Block::Heading("sub".into()))
            .block(Block::Note("a note".into()));
        let text = TextRenderer.render_section(&section);
        assert_eq!(
            text,
            "# Figure 9 — example\nalgorithm,success_rate\nEpidemic,0.750\nFresh,-\n\
             # spread: 0.125\n## sub\n# a note\n"
        );
    }

    #[test]
    fn boxplot_rows_match_the_legacy_render_line() {
        let samples = [0.5, 1.0, 1.5, 2.0, 4.0];
        let bp = BoxPlot::new(&samples).unwrap();
        let columns = vec![
            Column::text("hop_pair"),
            Column::int("n"),
            Column::fixed("min", 3),
            Column::fixed("q1", 3),
            Column::fixed("med", 3),
            Column::fixed("q3", 3),
            Column::fixed("max", 3),
            Column::fixed("whisker_low", 3),
            Column::fixed("whisker_high", 3),
            Column::int("outliers"),
        ];
        let mut table = Table::new("ratios", columns).with_style(TableStyle::BoxPlotLines);
        table.push_row(vec![
            CellValue::Text("1/0".into()),
            CellValue::Int(bp.count as u64),
            CellValue::Float(bp.min),
            CellValue::Float(bp.q1),
            CellValue::Float(bp.median),
            CellValue::Float(bp.q3),
            CellValue::Float(bp.max),
            CellValue::Float(bp.whisker_low),
            CellValue::Float(bp.whisker_high),
            CellValue::Int(bp.outliers.len() as u64),
        ]);
        let text = TextRenderer.render_table(&table);
        assert_eq!(text, format!("1/0: {}\n", bp.render_line()));
    }

    #[test]
    fn malformed_boxplot_tables_degrade_to_csv_instead_of_panicking() {
        let mut table = Table::new("t", vec![Column::text("a"), Column::int("b")])
            .with_style(TableStyle::BoxPlotLines);
        table.push_row(vec![CellValue::Text("x".into()), CellValue::Int(1)]);
        assert_eq!(TextRenderer.render_table(&table), "a,b\nx,1\n");
    }

    #[test]
    fn documents_separate_sections_with_blank_lines() {
        let doc = ReportDoc {
            study: "s".into(),
            sections: vec![
                Section::new().block(Block::Note("one".into())),
                Section::new().block(Block::Note("two".into())),
            ],
        };
        assert_eq!(TextRenderer.render_text(&doc), "# one\n\n# two\n\n");
    }
}
