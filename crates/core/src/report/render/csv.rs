//! The CSV backend: one file per table or series, plus a per-section stats
//! file.
//!
//! File names are deterministic:
//! `NN-<scenario>-<view>[-<heading>]-<name>.csv`, where `NN` is the global
//! artifact ordinal (guaranteeing uniqueness), the middle parts are slugs
//! of the section tags, `heading` is the innermost `##` heading preceding
//! the block (e.g. the algorithm of a per-algorithm delay CDF), and `name`
//! is the table/series name. A section's typed scalars ([`Section::stats`]
//! plus scalar blocks) are collected into one `…-stats.csv` with
//! `name,value,unit` rows.
//!
//! Cell values are formatted exactly like the text backend (per-column
//! [`NumberFormat`]); missing cells are empty fields; fields containing
//! commas, quotes or newlines are quoted per RFC 4180.

use crate::report::model::{slug, Block, ReportDoc, Series, Table};
use crate::report::render::{Artifact, Renderer};

/// The CSV renderer.
#[derive(Debug, Clone, Copy, Default)]
pub struct CsvRenderer;

fn csv_field(raw: &str) -> String {
    if raw.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", raw.replace('"', "\"\""))
    } else {
        raw.to_string()
    }
}

fn table_contents(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<String> = table.columns.iter().map(|c| csv_field(&c.name)).collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for row in &table.rows {
        let cells: Vec<String> = row
            .iter()
            .zip(&table.columns)
            .map(|(cell, column)| match cell {
                crate::report::model::CellValue::Missing => String::new(),
                other => csv_field(&other.render(column.format)),
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn series_contents(series: &Series) -> String {
    let mut out = String::new();
    out.push_str(&format!("{},{}\n", csv_field(&series.x.name), csv_field(&series.y.name)));
    for &(x, y) in &series.points {
        out.push_str(&format!("{},{}\n", series.x.format.format(x), series.y.format.format(y)));
    }
    out
}

impl CsvRenderer {
    fn filename(ordinal: usize, width: usize, parts: &[&str]) -> String {
        let mut name = format!("{ordinal:0width$}");
        for part in parts {
            if !part.is_empty() {
                name.push('-');
                name.push_str(&slug(part));
            }
        }
        name.push_str(".csv");
        name
    }
}

impl Renderer for CsvRenderer {
    fn format_name(&self) -> &'static str {
        "csv"
    }

    fn render(&self, doc: &ReportDoc) -> Vec<Artifact> {
        // Collect name parts + contents first; the ordinal prefix width is
        // sized to the final count so lexicographic file order always
        // matches document order (a fixed two-digit pad would interleave
        // `100-…` before `99-…` on large sweeps).
        let mut entries: Vec<(Vec<String>, String)> = Vec::new();
        for section in &doc.sections {
            let mut heading = String::new();
            let tag = |name: &str, heading: &str| {
                vec![
                    section.scenario.clone(),
                    section.view.clone(),
                    heading.to_string(),
                    name.to_string(),
                ]
            };
            for block in &section.blocks {
                match block {
                    Block::Heading(text) => heading = text.clone(),
                    Block::Table(table) => {
                        entries.push((tag(&table.name, &heading), table_contents(table)))
                    }
                    Block::Series(series) => {
                        entries.push((tag(&series.name, &heading), series_contents(series)))
                    }
                    Block::Title(_) | Block::Note(_) | Block::Scalar(_) => {}
                }
            }
            let scalars = section.scalars();
            if !scalars.is_empty() {
                let mut contents = String::from("name,value,unit\n");
                for scalar in scalars {
                    contents.push_str(&format!(
                        "{},{},{}\n",
                        csv_field(&scalar.name),
                        scalar.render_value(),
                        csv_field(scalar.unit.as_deref().unwrap_or("")),
                    ));
                }
                entries.push((tag("stats", ""), contents));
            }
        }
        let width = entries.len().saturating_sub(1).to_string().len().max(2);
        entries
            .into_iter()
            .enumerate()
            .map(|(ordinal, (parts, contents))| Artifact {
                filename: {
                    let parts: Vec<&str> = parts.iter().map(String::as_str).collect();
                    CsvRenderer::filename(ordinal, width, &parts)
                },
                contents,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::report::model::{CellValue, Column, Scalar, Section};

    #[test]
    fn one_file_per_table_with_deterministic_unique_names() {
        let mut table = Table::new("bursts", vec![Column::fixed("t", 0), Column::int("paths")]);
        table.push_row(vec![CellValue::Float(12.4), CellValue::Int(3)]);
        let series = Series::new(
            "delay (s)",
            Column::fixed("minute", 0),
            Column::display("count"),
            vec![(1.0, 2.0)],
        );
        let doc = ReportDoc {
            study: "s".into(),
            sections: vec![Section {
                scenario: "Infocom06 9-12".into(),
                view: "paths-taken".into(),
                run: None,
                stats: vec![Scalar::fixed("cv", 0.5, 3)],
                blocks: vec![
                    Block::Table(table.clone()),
                    Block::Heading("Epidemic".into()),
                    Block::Series(series.clone()),
                    Block::Heading("Fresh".into()),
                    Block::Series(series),
                ],
            }],
        };
        let artifacts = CsvRenderer.render(&doc);
        let names: Vec<&str> = artifacts.iter().map(|a| a.filename.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "00-infocom06-9-12-paths-taken-bursts.csv",
                "01-infocom06-9-12-paths-taken-epidemic-delay-s.csv",
                "02-infocom06-9-12-paths-taken-fresh-delay-s.csv",
                "03-infocom06-9-12-paths-taken-stats.csv",
            ]
        );
        assert_eq!(artifacts[0].contents, "t,paths\n12,3\n");
        assert_eq!(artifacts[3].contents, "name,value,unit\ncv,0.500,\n");
    }

    #[test]
    fn ordinal_width_grows_with_the_artifact_count() {
        let mut table = Table::new("t", vec![Column::int("x")]);
        table.push_row(vec![CellValue::Int(1)]);
        let doc = ReportDoc {
            study: "s".into(),
            sections: (0..120).map(|_| Section::new().block(Block::Table(table.clone()))).collect(),
        };
        let artifacts = CsvRenderer.render(&doc);
        assert_eq!(artifacts.len(), 120);
        assert!(artifacts[0].filename.starts_with("000-"), "{}", artifacts[0].filename);
        assert!(artifacts[119].filename.starts_with("119-"), "{}", artifacts[119].filename);
        let mut sorted: Vec<&str> = artifacts.iter().map(|a| a.filename.as_str()).collect();
        sorted.sort_unstable();
        assert!(
            sorted.iter().zip(&artifacts).all(|(name, a)| *name == a.filename),
            "lexicographic order must match document order"
        );
    }

    #[test]
    fn fields_with_commas_and_quotes_are_quoted() {
        let mut table = Table::new("t", vec![Column::text("label, with comma")]);
        table.push_row(vec![CellValue::Text("say \"hi\"".into())]);
        table.push_row(vec![CellValue::Missing]);
        let contents = table_contents(&table);
        assert_eq!(contents, "\"label, with comma\"\n\"say \"\"hi\"\"\"\n\n");
    }
}
