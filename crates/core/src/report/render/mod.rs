//! Pluggable report renderers.
//!
//! A renderer turns a [`ReportDoc`](crate::report::model::ReportDoc) into
//! one or more named [`Artifact`]s:
//!
//! * [`TextRenderer`] — the historical plain-text/CSV stream, pinned
//!   byte-for-byte to the golden preset captures;
//! * [`JsonRenderer`] — the `psn-report/1` schema, with a parser for
//!   round-tripping;
//! * [`CsvRenderer`] — one `.csv` file per table/series plus per-section
//!   stats files.

pub mod csv;
pub mod json;
pub mod text;

pub use csv::CsvRenderer;
pub use json::{JsonRenderer, ReportJsonError};
pub use text::TextRenderer;

use crate::report::model::ReportDoc;

/// One named output file produced by a renderer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// File name (relative; no directories).
    pub filename: String,
    /// File contents.
    pub contents: String,
}

/// A pluggable rendering backend.
pub trait Renderer {
    /// The CLI name of the format (`text`, `json`, `csv`).
    fn format_name(&self) -> &'static str;
    /// Renders the document into one or more artifacts.
    fn render(&self, doc: &ReportDoc) -> Vec<Artifact>;
}

/// The registered output formats of the `psn-study` CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Plain text (golden-pinned legacy stream).
    Text,
    /// The `psn-report/1` JSON schema.
    Json,
    /// One CSV file per table.
    Csv,
}

impl ReportFormat {
    /// Every format, in CLI listing order.
    pub fn all() -> [ReportFormat; 3] {
        [ReportFormat::Text, ReportFormat::Json, ReportFormat::Csv]
    }

    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            ReportFormat::Text => "text",
            ReportFormat::Json => "json",
            ReportFormat::Csv => "csv",
        }
    }

    /// Parses a CLI format name.
    pub fn parse(name: &str) -> Option<ReportFormat> {
        ReportFormat::all().into_iter().find(|f| f.name() == name)
    }

    /// Instantiates the renderer backend for this format.
    pub fn renderer(&self) -> Box<dyn Renderer> {
        match self {
            ReportFormat::Text => Box::new(TextRenderer),
            ReportFormat::Json => Box::new(JsonRenderer),
            ReportFormat::Csv => Box::new(CsvRenderer),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn formats_round_trip_and_build_renderers() {
        for format in ReportFormat::all() {
            assert_eq!(ReportFormat::parse(format.name()), Some(format));
            assert_eq!(format.renderer().format_name(), format.name());
        }
        assert_eq!(ReportFormat::parse("yaml"), None);
    }
}
