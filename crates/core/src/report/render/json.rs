//! The JSON backend: a self-describing, parseable schema for typed
//! reports.
//!
//! The emitted document (`"schema": "psn-report/1"`) carries the full value
//! model — sections with scenario/view tags, run metadata, typed stats, and
//! blocks with column schemas — so downstream tooling (sweep analysis,
//! plotting, regression tracking) never re-parses our text output.
//!
//! The module also ships a parser ([`JsonRenderer::parse`]) that
//! reconstructs a [`ReportDoc`] exactly: floats are emitted in Rust's
//! shortest round-trip form, integers without a decimal point, so
//! `parse(render(doc)) == doc` (pinned by round-trip tests for all six
//! studies). Like the scenario config formats, the implementation is
//! self-contained because the build environment vendors a marker-only
//! serde.

use std::fmt::Write as _;

use crate::report::model::{
    Block, CellValue, Column, NumberFormat, ReportDoc, RunMeta, Scalar, Section, Series, Table,
    TableStyle,
};
use crate::report::render::{Artifact, Renderer};

/// Error raised while parsing a report JSON document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportJsonError {
    message: String,
}

impl ReportJsonError {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for ReportJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "report json error: {}", self.message)
    }
}

impl std::error::Error for ReportJsonError {}

/// The JSON renderer/parser.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonRenderer;

impl JsonRenderer {
    /// Serialises a document to the `psn-report/1` JSON schema.
    pub fn render_json(&self, doc: &ReportDoc) -> String {
        let mut w = Writer::new();
        w.open_obj();
        w.key("schema");
        w.string("psn-report/1");
        w.key("study");
        w.string(&doc.study);
        w.key("sections");
        w.open_arr();
        for section in &doc.sections {
            w.item();
            write_section(&mut w, section);
        }
        w.close_arr();
        w.close_obj();
        w.finish()
    }

    /// Parses a `psn-report/1` document back into a [`ReportDoc`].
    pub fn parse(&self, text: &str) -> Result<ReportDoc, ReportJsonError> {
        let value = parse::parse(text)?;
        let obj = value.as_obj("document")?;
        let schema = obj.get_str("schema")?;
        if schema != "psn-report/1" {
            return Err(ReportJsonError::new(format!("unsupported schema {schema:?}")));
        }
        let mut doc = ReportDoc::new(obj.get_str("study")?);
        for section in obj.get_arr("sections")? {
            doc.sections.push(read_section(section)?);
        }
        Ok(doc)
    }
}

impl Renderer for JsonRenderer {
    fn format_name(&self) -> &'static str {
        "json"
    }

    fn render(&self, doc: &ReportDoc) -> Vec<Artifact> {
        vec![Artifact { filename: "report.json".to_string(), contents: self.render_json(doc) }]
    }
}

// ----- emission -------------------------------------------------------------

/// Formats a float in shortest round-trip form; integral values keep a
/// trailing `.0` so the parser can tell float cells from integer cells.
fn fmt_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "report values must be finite");
    format!("{v:?}")
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            // RFC 8259 requires escaping every other control character
            // too; strict parsers (python's json, the CI smoke step)
            // reject them raw.
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            other => out.push(other),
        }
    }
    out
}

/// A small pretty-printing JSON writer: objects and arrays indent by two
/// spaces; `compact` regions (rows, points) stay on one line.
struct Writer {
    out: String,
    indent: usize,
    needs_comma: Vec<bool>,
    compact: usize,
}

impl Writer {
    fn new() -> Self {
        Self { out: String::new(), indent: 0, needs_comma: vec![false], compact: 0 }
    }

    fn newline(&mut self) {
        if self.compact == 0 {
            self.out.push('\n');
            for _ in 0..self.indent {
                self.out.push_str("  ");
            }
        }
    }

    fn separate(&mut self) {
        if *self.needs_comma.last().unwrap_or_else(|| unreachable!("writer scope")) {
            self.out.push(',');
            if self.compact > 0 {
                self.out.push(' ');
            }
        }
        *self.needs_comma.last_mut().unwrap_or_else(|| unreachable!("writer scope")) = true;
        self.newline();
    }

    /// Starts the next array item.
    fn item(&mut self) {
        self.separate();
    }

    fn key(&mut self, key: &str) {
        self.separate();
        let _ = write!(self.out, "\"{}\": ", escape(key));
    }

    fn open_obj(&mut self) {
        self.out.push('{');
        self.indent += 1;
        self.needs_comma.push(false);
    }

    fn close_obj(&mut self) {
        self.indent -= 1;
        let had_items = self.needs_comma.pop().unwrap_or_else(|| unreachable!("writer scope"));
        if had_items {
            self.newline();
        }
        self.out.push('}');
    }

    fn open_arr(&mut self) {
        self.out.push('[');
        self.indent += 1;
        self.needs_comma.push(false);
    }

    fn close_arr(&mut self) {
        self.indent -= 1;
        let had_items = self.needs_comma.pop().unwrap_or_else(|| unreachable!("writer scope"));
        if had_items {
            self.newline();
        }
        self.out.push(']');
    }

    fn begin_compact(&mut self) {
        self.compact += 1;
    }

    fn end_compact(&mut self) {
        self.compact -= 1;
    }

    fn string(&mut self, s: &str) {
        let _ = write!(self.out, "\"{}\"", escape(s));
    }

    fn raw(&mut self, s: &str) {
        self.out.push_str(s);
    }

    fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

fn write_format(w: &mut Writer, format: NumberFormat) {
    match format {
        NumberFormat::Fixed(decimals) => w.raw(&decimals.to_string()),
        NumberFormat::Display => w.string("display"),
    }
}

fn write_column(w: &mut Writer, column: &Column) {
    w.begin_compact();
    w.open_obj();
    w.key("name");
    w.string(&column.name);
    w.key("unit");
    match &column.unit {
        Some(unit) => w.string(unit),
        None => w.raw("null"),
    }
    w.key("format");
    write_format(w, column.format);
    w.close_obj();
    w.end_compact();
}

fn write_scalar(w: &mut Writer, scalar: &Scalar) {
    w.begin_compact();
    w.open_obj();
    w.key("name");
    w.string(&scalar.name);
    w.key("value");
    w.raw(&fmt_f64(scalar.value));
    w.key("unit");
    match &scalar.unit {
        Some(unit) => w.string(unit),
        None => w.raw("null"),
    }
    w.key("format");
    write_format(w, scalar.format);
    w.close_obj();
    w.end_compact();
}

fn write_table(w: &mut Writer, table: &Table) {
    w.key("name");
    w.string(&table.name);
    w.key("style");
    w.string(match table.style {
        TableStyle::Csv => "csv",
        TableStyle::BoxPlotLines => "boxplot",
    });
    w.key("columns");
    w.open_arr();
    for column in &table.columns {
        w.item();
        write_column(w, column);
    }
    w.close_arr();
    w.key("rows");
    w.open_arr();
    for row in &table.rows {
        w.item();
        w.begin_compact();
        w.open_arr();
        for cell in row {
            w.item();
            match cell {
                CellValue::Float(v) => w.raw(&fmt_f64(*v)),
                CellValue::Int(v) => w.raw(&v.to_string()),
                CellValue::Text(t) => w.string(t),
                CellValue::Missing => w.raw("null"),
            }
        }
        w.close_arr();
        w.end_compact();
    }
    w.close_arr();
}

fn write_series(w: &mut Writer, series: &Series) {
    w.key("name");
    w.string(&series.name);
    w.key("samples");
    match series.samples {
        Some(n) => w.raw(&n.to_string()),
        None => w.raw("null"),
    }
    w.key("x");
    write_column(w, &series.x);
    w.key("y");
    write_column(w, &series.y);
    w.key("points");
    w.open_arr();
    for &(x, y) in &series.points {
        w.item();
        w.begin_compact();
        w.open_arr();
        w.item();
        w.raw(&fmt_f64(x));
        w.item();
        w.raw(&fmt_f64(y));
        w.close_arr();
        w.end_compact();
    }
    w.close_arr();
}

fn write_section(w: &mut Writer, section: &Section) {
    w.open_obj();
    w.key("scenario");
    w.string(&section.scenario);
    w.key("view");
    w.string(&section.view);
    w.key("run");
    match &section.run {
        None => w.raw("null"),
        Some(run) => {
            w.begin_compact();
            w.open_obj();
            w.key("scenario_kind");
            w.string(&run.scenario_kind);
            w.key("seed");
            w.raw(&run.seed.to_string());
            w.key("nodes");
            w.raw(&run.nodes.to_string());
            w.key("window_seconds");
            w.raw(&fmt_f64(run.window_seconds));
            w.close_obj();
            w.end_compact();
        }
    }
    w.key("stats");
    w.open_arr();
    for stat in &section.stats {
        w.item();
        write_scalar(w, stat);
    }
    w.close_arr();
    w.key("blocks");
    w.open_arr();
    for block in &section.blocks {
        w.item();
        w.open_obj();
        w.key("kind");
        match block {
            Block::Title(text) => {
                w.string("title");
                w.key("text");
                w.string(text);
            }
            Block::Heading(text) => {
                w.string("heading");
                w.key("text");
                w.string(text);
            }
            Block::Note(text) => {
                w.string("note");
                w.key("text");
                w.string(text);
            }
            Block::Scalar(scalar) => {
                w.string("scalar");
                w.key("scalar");
                write_scalar(w, scalar);
            }
            Block::Table(table) => {
                w.string("table");
                write_table(w, table);
            }
            Block::Series(series) => {
                w.string("series");
                write_series(w, series);
            }
        }
        w.close_obj();
    }
    w.close_arr();
    w.close_obj();
}

// ----- parsing --------------------------------------------------------------

mod parse {
    use super::ReportJsonError;

    /// A parsed JSON value. Integer-looking number tokens (no `.`/`e`) stay
    /// integers so typed cells round-trip exactly.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        Null,
        Int(u64),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        pub fn as_obj(&self, what: &str) -> Result<ObjView<'_>, ReportJsonError> {
            match self {
                Json::Obj(fields) => Ok(ObjView(fields)),
                other => {
                    Err(ReportJsonError::new(format!("{what}: expected object, got {other:?}")))
                }
            }
        }

        pub fn as_f64(&self, what: &str) -> Result<f64, ReportJsonError> {
            match self {
                Json::Num(v) => Ok(*v),
                Json::Int(v) => Ok(*v as f64),
                other => {
                    Err(ReportJsonError::new(format!("{what}: expected number, got {other:?}")))
                }
            }
        }

        pub fn as_u64(&self, what: &str) -> Result<u64, ReportJsonError> {
            match self {
                Json::Int(v) => Ok(*v),
                other => {
                    Err(ReportJsonError::new(format!("{what}: expected integer, got {other:?}")))
                }
            }
        }

        pub fn as_str(&self, what: &str) -> Result<&str, ReportJsonError> {
            match self {
                Json::Str(s) => Ok(s),
                other => {
                    Err(ReportJsonError::new(format!("{what}: expected string, got {other:?}")))
                }
            }
        }

        pub fn as_arr(&self, what: &str) -> Result<&[Json], ReportJsonError> {
            match self {
                Json::Arr(items) => Ok(items),
                other => {
                    Err(ReportJsonError::new(format!("{what}: expected array, got {other:?}")))
                }
            }
        }
    }

    /// A field-accessor view over an object value.
    #[derive(Clone, Copy)]
    pub struct ObjView<'a>(&'a [(String, Json)]);

    impl<'a> ObjView<'a> {
        pub fn get(&self, key: &str) -> Result<&'a Json, ReportJsonError> {
            self.0
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| ReportJsonError::new(format!("missing field {key:?}")))
        }

        pub fn get_str(&self, key: &str) -> Result<&'a str, ReportJsonError> {
            self.get(key)?.as_str(key)
        }

        pub fn get_arr(&self, key: &str) -> Result<&'a [Json], ReportJsonError> {
            self.get(key)?.as_arr(key)
        }
    }

    struct Parser<'a> {
        chars: std::iter::Peekable<std::str::CharIndices<'a>>,
        text: &'a str,
    }

    impl<'a> Parser<'a> {
        fn error(&mut self, message: &str) -> ReportJsonError {
            let at = self.chars.peek().map(|&(i, _)| i).unwrap_or(self.text.len());
            ReportJsonError::new(format!("offset {at}: {message}"))
        }

        fn skip_ws(&mut self) {
            while matches!(self.chars.peek(), Some(&(_, c)) if c.is_whitespace()) {
                self.chars.next();
            }
        }

        fn peek(&mut self) -> Option<char> {
            self.skip_ws();
            self.chars.peek().map(|&(_, c)| c)
        }

        fn expect(&mut self, want: char) -> Result<(), ReportJsonError> {
            self.skip_ws();
            match self.chars.next() {
                Some((_, c)) if c == want => Ok(()),
                _ => Err(self.error(&format!("expected {want:?}"))),
            }
        }

        fn parse_string(&mut self) -> Result<String, ReportJsonError> {
            self.expect('"')?;
            let mut out = String::new();
            loop {
                match self.chars.next() {
                    Some((_, '"')) => return Ok(out),
                    Some((_, '\\')) => match self.chars.next() {
                        Some((_, '"')) => out.push('"'),
                        Some((_, '\\')) => out.push('\\'),
                        Some((_, 'n')) => out.push('\n'),
                        Some((_, 't')) => out.push('\t'),
                        Some((_, 'r')) => out.push('\r'),
                        Some((_, '/')) => out.push('/'),
                        Some((_, 'u')) => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let digit = self
                                    .chars
                                    .next()
                                    .and_then(|(_, c)| c.to_digit(16))
                                    .ok_or_else(|| ReportJsonError::new("invalid \\u escape"))?;
                                code = code * 16 + digit;
                            }
                            // Surrogate pairs are not produced by our
                            // emitter (it only escapes control chars);
                            // reject them rather than mis-decode.
                            let c = char::from_u32(code).ok_or_else(|| {
                                ReportJsonError::new("unsupported \\u surrogate escape")
                            })?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unsupported string escape")),
                    },
                    Some((_, c)) => out.push(c),
                    None => return Err(self.error("unterminated string")),
                }
            }
        }

        fn parse_number(&mut self) -> Result<Json, ReportJsonError> {
            self.skip_ws();
            let start = match self.chars.peek() {
                Some(&(i, _)) => i,
                None => return Err(self.error("expected a number")),
            };
            let mut end = start;
            while let Some(&(i, c)) = self.chars.peek() {
                if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                    end = i + c.len_utf8();
                    self.chars.next();
                } else {
                    break;
                }
            }
            let token = &self.text[start..end];
            if !token.contains(['.', 'e', 'E']) {
                if let Ok(v) = token.parse::<u64>() {
                    return Ok(Json::Int(v));
                }
            }
            token
                .parse::<f64>()
                .map(Json::Num)
                .map_err(|_| ReportJsonError::new(format!("invalid number {token:?}")))
        }

        fn parse_value(&mut self) -> Result<Json, ReportJsonError> {
            match self.peek() {
                Some('{') => {
                    self.expect('{')?;
                    let mut fields = Vec::new();
                    if self.peek() == Some('}') {
                        self.chars.next();
                        return Ok(Json::Obj(fields));
                    }
                    loop {
                        self.skip_ws();
                        let key = self.parse_string()?;
                        self.expect(':')?;
                        let value = self.parse_value()?;
                        fields.push((key, value));
                        match self.peek() {
                            Some(',') => {
                                self.chars.next();
                            }
                            Some('}') => {
                                self.chars.next();
                                return Ok(Json::Obj(fields));
                            }
                            _ => return Err(self.error("expected ',' or '}'")),
                        }
                    }
                }
                Some('[') => {
                    self.expect('[')?;
                    let mut items = Vec::new();
                    if self.peek() == Some(']') {
                        self.chars.next();
                        return Ok(Json::Arr(items));
                    }
                    loop {
                        items.push(self.parse_value()?);
                        match self.peek() {
                            Some(',') => {
                                self.chars.next();
                            }
                            Some(']') => {
                                self.chars.next();
                                return Ok(Json::Arr(items));
                            }
                            _ => return Err(self.error("expected ',' or ']'")),
                        }
                    }
                }
                Some('"') => Ok(Json::Str(self.parse_string()?)),
                Some('n') => {
                    for want in ['n', 'u', 'l', 'l'] {
                        match self.chars.next() {
                            Some((_, c)) if c == want => {}
                            _ => return Err(self.error("expected null")),
                        }
                    }
                    Ok(Json::Null)
                }
                _ => self.parse_number(),
            }
        }
    }

    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, ReportJsonError> {
        let mut parser = Parser { chars: text.char_indices().peekable(), text };
        let value = parser.parse_value()?;
        parser.skip_ws();
        if parser.chars.next().is_some() {
            return Err(ReportJsonError::new("trailing content after the document"));
        }
        Ok(value)
    }
}

use parse::Json;

fn read_format(value: &Json) -> Result<NumberFormat, ReportJsonError> {
    match value {
        Json::Int(decimals) => Ok(NumberFormat::Fixed(*decimals as usize)),
        Json::Str(s) if s == "display" => Ok(NumberFormat::Display),
        other => Err(ReportJsonError::new(format!("invalid number format {other:?}"))),
    }
}

fn read_opt_string(value: &Json, what: &str) -> Result<Option<String>, ReportJsonError> {
    match value {
        Json::Null => Ok(None),
        Json::Str(s) => Ok(Some(s.clone())),
        other => {
            Err(ReportJsonError::new(format!("{what}: expected string or null, got {other:?}")))
        }
    }
}

fn read_column(value: &Json) -> Result<Column, ReportJsonError> {
    let obj = value.as_obj("column")?;
    Ok(Column {
        name: obj.get_str("name")?.to_string(),
        unit: read_opt_string(obj.get("unit")?, "unit")?,
        format: read_format(obj.get("format")?)?,
    })
}

fn read_scalar(value: &Json) -> Result<Scalar, ReportJsonError> {
    let obj = value.as_obj("scalar")?;
    Ok(Scalar {
        name: obj.get_str("name")?.to_string(),
        value: obj.get("value")?.as_f64("value")?,
        unit: read_opt_string(obj.get("unit")?, "unit")?,
        format: read_format(obj.get("format")?)?,
    })
}

fn read_cell(value: &Json) -> Result<CellValue, ReportJsonError> {
    Ok(match value {
        Json::Null => CellValue::Missing,
        Json::Int(v) => CellValue::Int(*v),
        Json::Num(v) => CellValue::Float(*v),
        Json::Str(s) => CellValue::Text(s.clone()),
        other => return Err(ReportJsonError::new(format!("invalid cell {other:?}"))),
    })
}

fn read_block(value: &Json) -> Result<Block, ReportJsonError> {
    let obj = value.as_obj("block")?;
    let kind = obj.get_str("kind")?;
    Ok(match kind {
        "title" => Block::Title(obj.get_str("text")?.to_string()),
        "heading" => Block::Heading(obj.get_str("text")?.to_string()),
        "note" => Block::Note(obj.get_str("text")?.to_string()),
        "scalar" => Block::Scalar(read_scalar(obj.get("scalar")?)?),
        "table" => {
            let style = match obj.get_str("style")? {
                "csv" => TableStyle::Csv,
                "boxplot" => TableStyle::BoxPlotLines,
                other => {
                    return Err(ReportJsonError::new(format!("unknown table style {other:?}")))
                }
            };
            let columns =
                obj.get_arr("columns")?.iter().map(read_column).collect::<Result<Vec<_>, _>>()?;
            let mut table = Table::new(obj.get_str("name")?, columns).with_style(style);
            for row in obj.get_arr("rows")? {
                let cells =
                    row.as_arr("row")?.iter().map(read_cell).collect::<Result<Vec<_>, _>>()?;
                if cells.len() != table.columns.len() {
                    return Err(ReportJsonError::new(format!(
                        "table {:?}: row width {} does not match {} columns",
                        table.name,
                        cells.len(),
                        table.columns.len()
                    )));
                }
                table.push_row(cells);
            }
            Block::Table(table)
        }
        "series" => {
            let samples = match obj.get("samples")? {
                Json::Null => None,
                other => Some(other.as_u64("samples")? as usize),
            };
            let points = obj
                .get_arr("points")?
                .iter()
                .map(|p| {
                    let pair = p.as_arr("point")?;
                    if pair.len() != 2 {
                        return Err(ReportJsonError::new("points must be [x, y] pairs"));
                    }
                    Ok((pair[0].as_f64("x")?, pair[1].as_f64("y")?))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let mut series = Series::new(
                obj.get_str("name")?,
                read_column(obj.get("x")?)?,
                read_column(obj.get("y")?)?,
                points,
            );
            series.samples = samples;
            Block::Series(series)
        }
        other => return Err(ReportJsonError::new(format!("unknown block kind {other:?}"))),
    })
}

fn read_section(value: &Json) -> Result<Section, ReportJsonError> {
    let obj = value.as_obj("section")?;
    let run = match obj.get("run")? {
        Json::Null => None,
        run => {
            let run = run.as_obj("run")?;
            Some(RunMeta {
                scenario_kind: run.get_str("scenario_kind")?.to_string(),
                seed: run.get("seed")?.as_u64("seed")?,
                nodes: run.get("nodes")?.as_u64("nodes")? as usize,
                window_seconds: run.get("window_seconds")?.as_f64("window_seconds")?,
            })
        }
    };
    Ok(Section {
        scenario: obj.get_str("scenario")?.to_string(),
        view: obj.get_str("view")?.to_string(),
        run,
        stats: obj.get_arr("stats")?.iter().map(read_scalar).collect::<Result<Vec<_>, _>>()?,
        blocks: obj.get_arr("blocks")?.iter().map(read_block).collect::<Result<Vec<_>, _>>()?,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn sample_doc() -> ReportDoc {
        let mut table = Table::new(
            "delay_vs_success",
            vec![
                Column::text("algorithm"),
                Column::fixed("success_rate", 3),
                Column::fixed("average_delay_s", 1).with_unit("s"),
            ],
        );
        table.push_row(vec![
            CellValue::Text("Epidemic".into()),
            CellValue::Float(0.75),
            CellValue::Float(120.5),
        ]);
        table.push_row(vec![
            CellValue::Text("say \"hi\"\n".into()),
            CellValue::Float(-0.25),
            CellValue::Missing,
        ]);
        let series = Series {
            name: "delay (s)".into(),
            samples: Some(42),
            x: Column::fixed("value", 3),
            y: Column::fixed("probability", 4),
            points: vec![(0.0, 0.25), (1.5, 1.0)],
        };
        let mut boxes = Table::new(
            "ratios",
            vec![
                Column::text("hop_pair"),
                Column::int("n"),
                Column::fixed("min", 3),
                Column::fixed("q1", 3),
                Column::fixed("med", 3),
                Column::fixed("q3", 3),
                Column::fixed("max", 3),
                Column::fixed("whisker_low", 3),
                Column::fixed("whisker_high", 3),
                Column::int("outliers"),
            ],
        )
        .with_style(TableStyle::BoxPlotLines);
        boxes.push_row(vec![
            CellValue::Text("1/0".into()),
            CellValue::Int(12),
            CellValue::Float(0.5),
            CellValue::Float(1.0),
            CellValue::Float(1.5),
            CellValue::Float(2.0),
            CellValue::Float(4.0),
            CellValue::Float(0.5),
            CellValue::Float(4.0),
            CellValue::Int(0),
        ]);
        ReportDoc {
            study: "forwarding".into(),
            sections: vec![
                Section {
                    scenario: "Infocom06 9-12".into(),
                    view: "delay-vs-success".into(),
                    run: Some(RunMeta {
                        scenario_kind: "conference".into(),
                        seed: 42,
                        nodes: 98,
                        window_seconds: 10800.0,
                    }),
                    stats: vec![Scalar::fixed("cv", 0.5, 3).with_unit("ratio")],
                    blocks: vec![
                        Block::Title("Figure 9 — example".into()),
                        Block::Table(table),
                        Block::Scalar(Scalar::fixed("spread", 0.125, 3)),
                        Block::Heading("Epidemic".into()),
                        Block::Series(series),
                        Block::Note("done".into()),
                        Block::Table(boxes),
                    ],
                },
                Section::new().block(Block::Note("scenario-less".into())),
            ],
        }
    }

    #[test]
    fn documents_round_trip_exactly() {
        let doc = sample_doc();
        let json = JsonRenderer.render_json(&doc);
        let parsed = JsonRenderer.parse(&json).expect("rendered json parses");
        assert_eq!(parsed, doc, "json:\n{json}");
    }

    #[test]
    fn schema_and_kind_errors_are_reported() {
        assert!(JsonRenderer.parse("{}").is_err());
        assert!(JsonRenderer
            .parse("{\"schema\": \"other\", \"study\": \"x\", \"sections\": []}")
            .unwrap_err()
            .to_string()
            .contains("unsupported schema"));
        assert!(JsonRenderer.parse("not json").is_err());
        let json = JsonRenderer.render_json(&sample_doc());
        assert!(JsonRenderer.parse(&format!("{json} trailing")).is_err());
    }

    #[test]
    fn control_characters_are_escaped_and_round_trip() {
        let doc = ReportDoc {
            study: "s".into(),
            sections: vec![Section {
                scenario: "ctrl\u{0B}chars\u{1F}\nhere".into(),
                ..Section::new()
            }],
        };
        let json = JsonRenderer.render_json(&doc);
        // No raw control characters may survive inside the document
        // (RFC 8259); the newline escapes as \n, the rest as \u00XX.
        assert!(json.contains("\\u000b") && json.contains("\\u001f"), "{json}");
        assert!(!json.contains('\u{0B}'), "{json:?}");
        assert_eq!(JsonRenderer.parse(&json).unwrap(), doc);
    }

    #[test]
    fn float_and_integer_cells_stay_distinct() {
        let mut table = Table::new("t", vec![Column::display("a"), Column::int("b")]);
        table.push_row(vec![CellValue::Float(3.0), CellValue::Int(3)]);
        let doc = ReportDoc {
            study: "s".into(),
            sections: vec![Section::new().block(Block::Table(table))],
        };
        let parsed = JsonRenderer.parse(&JsonRenderer.render_json(&doc)).unwrap();
        assert_eq!(parsed, doc);
    }
}
