//! Paths taken by forwarding algorithms (Fig. 12).
//!
//! For an individual message the paper overlays (a) the burst structure of
//! valid-path arrivals at the destination (from the enumeration study) with
//! (b) the arrival time of the specific path each forwarding algorithm
//! chose. The point of the figure is that every algorithm's chosen path
//! lands early in the explosion process even when it is not optimal.

use psn_forwarding::{standard_algorithms, AlgorithmKind, Simulator, SimulatorConfig};
use psn_spacetime::{EnumerationConfig, Message, PathEnumerator, SpaceTimeGraph};
use psn_trace::{ContactTrace, Seconds};

use crate::report::{Block, CellValue, Column, Section, Table};

/// Fig. 12 data for one message.
#[derive(Debug, Clone)]
pub struct PathsTakenCase {
    /// The message analysed.
    pub message: Message,
    /// Valid-path arrival bursts: `(seconds since the first arrival, number
    /// of paths arriving at that instant)`.
    pub arrival_bursts: Vec<(Seconds, usize)>,
    /// Per algorithm: the arrival time of its chosen path relative to the
    /// first valid path's arrival (`None` if that algorithm failed to
    /// deliver the message).
    pub algorithm_arrivals: Vec<(AlgorithmKind, Option<Seconds>)>,
}

impl PathsTakenCase {
    /// Total number of enumerated path arrivals.
    pub fn total_paths(&self) -> usize {
        self.arrival_bursts.iter().map(|(_, c)| c).sum()
    }

    /// True if every algorithm that delivered did so within `window`
    /// seconds of the optimal arrival — the qualitative claim of Fig. 12.
    pub fn all_deliveries_within(&self, window: Seconds) -> bool {
        self.algorithm_arrivals.iter().filter_map(|(_, t)| *t).all(|t| t <= window + 1e-9)
    }

    /// The typed Fig. 12 section for this message: the path-arrival burst
    /// table and each algorithm's chosen-path arrival offset.
    pub fn section(&self) -> Section {
        let mut bursts = Table::new(
            "arrival_bursts",
            vec![
                Column::fixed("seconds_since_T1", 0).with_unit("s"),
                Column::int("arriving_paths"),
            ],
        );
        for &(t, count) in &self.arrival_bursts {
            bursts.push_row(vec![CellValue::Float(t), CellValue::Int(count as u64)]);
        }
        let mut arrivals = Table::new(
            "algorithm_arrivals",
            vec![Column::text("algorithm"), Column::fixed("arrival_offset_s", 0).with_unit("s")],
        );
        for (kind, arrival) in &self.algorithm_arrivals {
            arrivals
                .push_row(vec![CellValue::Text(kind.to_string()), CellValue::opt_float(*arrival)]);
        }
        Section::new()
            .block(Block::Title(format!(
                "Figure 12 — paths taken by forwarding algorithms, message {}",
                self.message
            )))
            .block(Block::Table(bursts))
            .block(Block::Table(arrivals))
    }
}

/// Runs the Fig. 12 analysis for a set of messages over one trace.
/// Builds private graph/timeline structures; callers that already hold
/// cached ones should use [`run_paths_taken_shared`].
pub fn run_paths_taken(
    trace: &ContactTrace,
    messages: &[Message],
    enumeration: EnumerationConfig,
) -> Vec<PathsTakenCase> {
    let graph = std::sync::Arc::new(SpaceTimeGraph::build_default(trace));
    let timeline = std::sync::Arc::new(psn_forwarding::HistoryTimeline::build(&graph));
    run_paths_taken_shared(trace, graph, timeline, messages, enumeration)
}

/// Runs the Fig. 12 analysis around an already-built default-Δ space-time
/// graph and history timeline — the artifact-store path — or a
/// bounded-window streaming graph ([`psn_spacetime::SharedGraph`] accepts
/// either representation). The enumerator and the simulator share the one
/// graph, so the analysis builds nothing per call; results are
/// bit-identical to [`run_paths_taken`].
pub fn run_paths_taken_shared(
    trace: &ContactTrace,
    graph: impl Into<psn_spacetime::SharedGraph>,
    timeline: std::sync::Arc<psn_forwarding::HistoryTimeline>,
    messages: &[Message],
    enumeration: EnumerationConfig,
) -> Vec<PathsTakenCase> {
    let graph = graph.into();
    // The simulator's Δ must match however the graph was discretized.
    let config =
        SimulatorConfig { delta: graph.as_graph_ref().delta(), ..SimulatorConfig::default() };
    let simulator = Simulator::from_parts(trace, graph.clone(), timeline, config);
    run_paths_taken_with(graph, simulator, messages, enumeration)
}

/// Runs the Fig. 12 analysis without a materialized trace — the
/// stream-native path, where the simulator's oracle is folded from the
/// event stream ([`psn_trace::ContactSummary`]). Bit-identical to
/// [`run_paths_taken_shared`] when the summary matches the trace.
pub fn run_paths_taken_streamed(
    summary: &psn_trace::ContactSummary,
    graph: impl Into<psn_spacetime::SharedGraph>,
    timeline: std::sync::Arc<psn_forwarding::HistoryTimeline>,
    messages: &[Message],
    enumeration: EnumerationConfig,
) -> Vec<PathsTakenCase> {
    let graph = graph.into();
    let config =
        SimulatorConfig { delta: graph.as_graph_ref().delta(), ..SimulatorConfig::default() };
    let simulator = Simulator::from_streamed_parts(
        summary.node_count(),
        psn_forwarding::TraceOracle::from_summary(summary),
        graph.clone(),
        timeline,
        config,
    );
    run_paths_taken_with(graph, simulator, messages, enumeration)
}

fn run_paths_taken_with(
    graph: psn_spacetime::SharedGraph,
    simulator: Simulator,
    messages: &[Message],
    enumeration: EnumerationConfig,
) -> Vec<PathsTakenCase> {
    let enumerator = PathEnumerator::new(&graph, enumeration);
    let algorithms = standard_algorithms();

    // Both the simulator and the enumerator sweep busy slots in ascending
    // order: declare the sequential plan so a windowed graph keeps the
    // sweep prefix hot across restarts.
    graph.as_graph_ref().advise_sequential(true);

    // One slot-major batch over all messages: a bounded-window graph
    // reloads each spilled slot at most once for the whole figure instead
    // of once per message, and results are bit-identical to per-message
    // enumeration because messages are independent.
    let mut scratches = Vec::new();
    let enumeration_results = enumerator.enumerate_batch(messages, &mut scratches);

    // One batched `run_many` over all (algorithm × message) work instead of
    // a simulator run per (message, algorithm) pair: messages simulate
    // independently, so outcomes are bit-identical, but the batch shares
    // utility tables and worker scratch (one arena of state per worker, not
    // one per call) and shards across the configured threads.
    let jobs: Vec<(&dyn psn_forwarding::ForwardingAlgorithm, &[Message])> =
        algorithms.iter().map(|(_, a)| (a.as_ref() as _, messages)).collect();
    let simulations = simulator.run_many(&jobs);

    let cases = messages
        .iter()
        .enumerate()
        .map(|(msg_idx, message)| {
            let enumeration_result = &enumeration_results[msg_idx];
            let first_arrival = enumeration_result.first_delivery_time();

            // Burst structure: group deliveries by arrival time.
            let mut arrival_bursts: Vec<(Seconds, usize)> = Vec::new();
            if let Some(first) = first_arrival {
                for delivery in &enumeration_result.deliveries {
                    let offset = delivery.time - first;
                    match arrival_bursts.last_mut() {
                        Some((t, count)) if (*t - offset).abs() < 1e-9 => *count += 1,
                        _ => arrival_bursts.push((offset, 1)),
                    }
                }
            }

            // Each algorithm's chosen-path arrival, relative to the first
            // valid path.
            let algorithm_arrivals = algorithms
                .iter()
                .zip(&simulations)
                .map(|((kind, _), result)| {
                    let arrival = match (result.outcomes[msg_idx].delivered_at, first_arrival) {
                        (Some(t), Some(first)) => Some(t - first),
                        _ => None,
                    };
                    (*kind, arrival)
                })
                .collect();

            PathsTakenCase { message: *message, arrival_bursts, algorithm_arrivals }
        })
        .collect();
    graph.as_graph_ref().advise_sequential(false);
    cases
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use psn_spacetime::MessageGenerator;
    use psn_trace::{DatasetId, SyntheticDataset};

    #[test]
    fn cases_report_bursts_and_algorithm_arrivals() {
        let mut ds = SyntheticDataset::quick_config(DatasetId::Infocom06Morning);
        ds.config.mobile_nodes = 18;
        ds.config.stationary_nodes = 4;
        ds.config.window_seconds = 1500.0;
        let trace = ds.generate();
        let generator = MessageGenerator::new(psn_spacetime::MessageWorkloadConfig {
            nodes: trace.node_count(),
            generation_horizon: 900.0,
            mean_interarrival: 4.0,
            seed: 5,
        });
        let messages = generator.uniform_messages(3);
        let cases = run_paths_taken(&trace, &messages, EnumerationConfig::quick(30));
        assert_eq!(cases.len(), 3);
        for case in &cases {
            assert_eq!(case.algorithm_arrivals.len(), 6);
            // Offsets are non-negative and bursts are in time order.
            for w in case.arrival_bursts.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
            for (_, arrival) in &case.algorithm_arrivals {
                if let Some(t) = arrival {
                    assert!(*t >= -1e-9);
                }
            }
            // Epidemic, when it delivers, arrives exactly at the first valid
            // path's time (offset zero).
            let epidemic = case
                .algorithm_arrivals
                .iter()
                .find(|(k, _)| *k == AlgorithmKind::Epidemic)
                .unwrap();
            if let Some(t) = epidemic.1 {
                assert!(t.abs() < 1e-9, "epidemic offset {t}");
            }
            if case.total_paths() > 0 {
                assert!(case.arrival_bursts[0].0.abs() < 1e-9);
            }
            // The helper is consistent with the raw data.
            assert!(case.all_deliveries_within(f64::INFINITY));
        }
    }
}
