//! Per-hop contact-rate analyses (Figs. 14 and 15).
//!
//! The paper's "effective forwarding" argument is that successful paths move
//! messages toward progressively higher-contact-rate nodes, so that path
//! explosion can begin as early as possible. Two pieces of evidence are
//! given:
//!
//! * Fig. 14 — the mean contact rate of the node occupying hop `h` of
//!   near-optimal paths, with 99% confidence intervals, rises over the first
//!   few hops;
//! * Fig. 15 — box plots of the rate ratio `r = λ_{next} / λ_{current}`
//!   between consecutive hops are concentrated above 1 for the early hops.
//!
//! The inputs are the near-optimal sample paths retained by the explosion
//! study (or any collection of [`Path`]s) plus the per-node contact rates.

use psn_forwarding::MessageOutcome;
use psn_spacetime::Path;
use psn_stats::{BoxPlot, ConfidenceInterval, Summary};
use psn_trace::ContactRates;

use crate::report::{Block, CellValue, Column, Scalar, Section, Table, TableStyle};

/// The per-hop rate statistics for a collection of near-optimal paths.
#[derive(Debug, Clone)]
pub struct HopRateStudy {
    /// Mean node contact rate at each hop index (0 = source), with a 99%
    /// confidence interval where at least two samples exist.
    pub mean_rate_per_hop: Vec<(usize, f64, Option<ConfidenceInterval>)>,
    /// Box plots of the contact-rate ratio between consecutive hops; entry
    /// `i` describes the ratio `rate(hop i+1) / rate(hop i)`, and the final
    /// entry describes the destination relative to the last relay.
    pub rate_ratio_per_hop: Vec<(String, BoxPlot)>,
    /// Number of paths analysed.
    pub paths: usize,
}

impl HopRateStudy {
    /// True if the mean contact rate increases from the source over the
    /// first `hops` hops (the paper's Fig. 14 claim for the first three
    /// hops).
    pub fn rates_increase_over_first_hops(&self, hops: usize) -> bool {
        let limit = hops.min(self.mean_rate_per_hop.len().saturating_sub(1));
        (0..limit).all(|i| self.mean_rate_per_hop[i + 1].1 >= self.mean_rate_per_hop[i].1 - 1e-12)
    }

    /// Fraction of first-hop transitions that move to a higher-rate node
    /// (the paper: "nearly all of the first hops are to nodes with higher
    /// rate than the source").
    pub fn first_hop_uphill_fraction(&self) -> Option<f64> {
        let (_, first) = self.rate_ratio_per_hop.first()?;
        // The box plot stores the full outlier set but not the raw samples;
        // use the quartiles as a robust summary: if even the 25th percentile
        // exceeds 1 the overwhelming majority of transitions are uphill.
        Some(if first.q1 > 1.0 {
            1.0
        } else if first.median > 1.0 {
            0.75
        } else {
            0.5
        })
    }

    /// The typed Fig. 14 section: mean contact rate per hop with 99%
    /// confidence intervals.
    pub fn mean_rate_section(&self) -> Section {
        let mut table = Table::new(
            "mean_rate_per_hop",
            vec![
                Column::int("hop"),
                Column::fixed("mean_rate", 5).with_unit("contacts/s"),
                Column::fixed("ci_low", 5).with_unit("contacts/s"),
                Column::fixed("ci_high", 5).with_unit("contacts/s"),
            ],
        );
        for (hop, mean, ci) in &self.mean_rate_per_hop {
            let (lo, hi) = match ci {
                Some(ci) => (CellValue::Float(ci.low()), CellValue::Float(ci.high())),
                None => (CellValue::Missing, CellValue::Missing),
            };
            table.push_row(vec![CellValue::Int(*hop as u64), CellValue::Float(*mean), lo, hi]);
        }
        Section::new()
            .stat(Scalar::display("paths", self.paths as f64))
            .block(Block::Title(format!(
                "Figure 14 — mean contact rate per hop ({} paths)",
                self.paths
            )))
            .block(Block::Table(table))
    }

    /// [`HopRateStudy::mean_rate_section`] prefixed with the
    /// `## taken by <algorithm>` heading the Fig. 14 lower half uses for
    /// paths a forwarding algorithm actually took. The `paths` stat is
    /// qualified with the algorithm so per-algorithm counts stay distinct
    /// in sweep summaries (plain `paths` would collide across sections).
    pub fn taken_by_section(&self, algorithm: &str) -> Section {
        let mut section = self.mean_rate_section();
        section.blocks.insert(0, Block::Heading(format!("taken by {algorithm}")));
        for stat in &mut section.stats {
            if stat.name == "paths" {
                stat.name = format!("paths[{algorithm}]");
            }
        }
        section
    }

    /// The typed Fig. 15 section: rate-ratio box plots between
    /// consecutive hops.
    pub fn rate_ratio_section(&self) -> Section {
        let mut table = Table::new(
            "rate_ratio_per_hop",
            vec![
                Column::text("hop_pair"),
                Column::int("n"),
                Column::fixed("min", 3),
                Column::fixed("q1", 3),
                Column::fixed("med", 3),
                Column::fixed("q3", 3),
                Column::fixed("max", 3),
                Column::fixed("whisker_low", 3),
                Column::fixed("whisker_high", 3),
                Column::int("outliers"),
            ],
        )
        .with_style(TableStyle::BoxPlotLines);
        for (label, bp) in &self.rate_ratio_per_hop {
            table.push_row(vec![
                CellValue::Text(label.clone()),
                CellValue::Int(bp.count as u64),
                CellValue::Float(bp.min),
                CellValue::Float(bp.q1),
                CellValue::Float(bp.median),
                CellValue::Float(bp.q3),
                CellValue::Float(bp.max),
                CellValue::Float(bp.whisker_low),
                CellValue::Float(bp.whisker_high),
                CellValue::Int(bp.outliers.len() as u64),
            ]);
        }
        Section::new()
            .stat(Scalar::display("paths", self.paths as f64))
            .block(Block::Title(format!(
                "Figure 15 — contact-rate ratios between consecutive hops ({} paths)",
                self.paths
            )))
            .block(Block::Table(table))
    }
}

/// Runs the per-hop analysis over the paths *actually taken* by a
/// forwarding algorithm — the delivered-copy hop paths the simulator
/// reconstructs per message. This is the forwarding-side counterpart of the
/// enumeration-based Fig. 14/15 input: undelivered messages contribute
/// nothing.
pub fn run_hop_rate_study_on_outcomes(
    outcomes: &[MessageOutcome],
    rates: &ContactRates,
) -> HopRateStudy {
    let paths: Vec<Path> = outcomes.iter().filter_map(|o| o.path.clone()).collect();
    run_hop_rate_study(&paths, rates)
}

/// Computes the per-hop statistics from near-optimal paths and per-node
/// contact rates.
pub fn run_hop_rate_study(paths: &[Path], rates: &ContactRates) -> HopRateStudy {
    // Collect the node contact rate at each hop index.
    let max_hops = paths.iter().map(|p| p.len()).max().unwrap_or(0);
    let mut per_hop: Vec<Vec<f64>> = vec![Vec::new(); max_hops];
    for path in paths {
        for (i, node) in path.nodes().enumerate() {
            per_hop[i].push(rates.rate(node));
        }
    }

    let mean_rate_per_hop = per_hop
        .iter()
        .enumerate()
        .filter(|(_, samples)| !samples.is_empty())
        .map(|(hop, samples)| {
            let mean =
                Summary::from_slice(samples).mean().unwrap_or_else(|| unreachable!("non-empty"));
            let ci = ConfidenceInterval::from_samples(samples, 0.99).ok();
            (hop, mean, ci)
        })
        .collect();

    // Rate ratios between consecutive hops. The final transition (to the
    // destination) is labelled "Dst/Lst" like the paper's Fig. 15.
    let mut ratio_samples: Vec<Vec<f64>> = vec![Vec::new(); max_hops.saturating_sub(1)];
    let mut final_transition: Vec<f64> = Vec::new();
    for path in paths {
        let nodes: Vec<_> = path.nodes().collect();
        for i in 0..nodes.len().saturating_sub(1) {
            let from = rates.rate(nodes[i]);
            let to = rates.rate(nodes[i + 1]);
            if from <= 0.0 {
                continue;
            }
            let ratio = to / from;
            if i + 2 == nodes.len() {
                final_transition.push(ratio);
            } else {
                ratio_samples[i].push(ratio);
            }
        }
    }

    let mut rate_ratio_per_hop: Vec<(String, BoxPlot)> = ratio_samples
        .iter()
        .enumerate()
        .filter(|(_, samples)| !samples.is_empty())
        .map(|(i, samples)| {
            let label = format!("{}/{}", i + 1, i);
            (
                label,
                BoxPlot::new(samples).unwrap_or_else(|e| unreachable!("non-empty samples: {e:?}")),
            )
        })
        .collect();
    if !final_transition.is_empty() {
        rate_ratio_per_hop.push((
            "Dst/Lst".to_string(),
            BoxPlot::new(&final_transition).unwrap_or_else(|e| unreachable!("non-empty: {e:?}")),
        ));
    }

    HopRateStudy { mean_rate_per_hop, rate_ratio_per_hop, paths: paths.len() }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use psn_trace::contact::Contact;
    use psn_trace::node::{NodeClass, NodeId, NodeRegistry};
    use psn_trace::trace::{ContactTrace, TimeWindow};

    fn nid(v: u32) -> NodeId {
        NodeId(v)
    }

    /// A trace where node rates increase with node id: node 3 is the
    /// busiest, node 0 the quietest.
    fn rates() -> ContactRates {
        let mut reg = NodeRegistry::new();
        for _ in 0..4 {
            reg.add(NodeClass::Mobile);
        }
        let mut contacts = Vec::new();
        // Node 1: 2 contacts, node 2: 4 contacts, node 3: 6 contacts.
        for k in 0..2 {
            contacts.push(
                Contact::new(nid(1), nid(2), k as f64 * 10.0, k as f64 * 10.0 + 1.0).unwrap(),
            );
        }
        for k in 0..2 {
            contacts.push(
                Contact::new(nid(2), nid(3), 100.0 + k as f64 * 10.0, 101.0 + k as f64 * 10.0)
                    .unwrap(),
            );
        }
        for k in 0..4 {
            contacts.push(
                Contact::new(nid(3), nid(0), 200.0 + k as f64 * 10.0, 201.0 + k as f64 * 10.0)
                    .unwrap(),
            );
        }
        let trace =
            ContactTrace::from_contacts("hr", reg, TimeWindow::new(0.0, 1000.0), contacts).unwrap();
        ContactRates::from_trace(&trace)
    }

    fn path(nodes: &[u32]) -> Path {
        let mut p = Path::source(nid(nodes[0]), 0.0);
        for (i, &n) in nodes.iter().enumerate().skip(1) {
            p = p.extended(nid(n), i as f64 * 10.0);
        }
        p
    }

    #[test]
    fn uphill_paths_show_increasing_rates_and_ratios_above_one() {
        let rates = rates();
        // Paths climb from the quiet source 1 toward the hub 3.
        let paths = vec![path(&[1, 2, 3]), path(&[1, 2, 3]), path(&[1, 3])];
        let study = run_hop_rate_study(&paths, &rates);
        assert_eq!(study.paths, 3);
        assert!(study.rates_increase_over_first_hops(2));
        assert!(!study.mean_rate_per_hop.is_empty());
        // All transitions are uphill, so every box plot median exceeds 1.
        for (label, bp) in &study.rate_ratio_per_hop {
            assert!(bp.median > 1.0, "{label}: median {}", bp.median);
        }
        assert_eq!(study.first_hop_uphill_fraction(), Some(1.0));
        // The final transition is labelled like the paper's figure.
        assert_eq!(study.rate_ratio_per_hop.last().unwrap().0, "Dst/Lst");
    }

    #[test]
    fn confidence_intervals_need_at_least_two_samples() {
        let rates = rates();
        let study = run_hop_rate_study(&[path(&[1, 2])], &rates);
        // Single path: means exist, CIs do not.
        for (_, _, ci) in &study.mean_rate_per_hop {
            assert!(ci.is_none());
        }
    }

    #[test]
    fn empty_input_is_handled() {
        let rates = rates();
        let study = run_hop_rate_study(&[], &rates);
        assert_eq!(study.paths, 0);
        assert!(study.mean_rate_per_hop.is_empty());
        assert!(study.rate_ratio_per_hop.is_empty());
        assert_eq!(study.first_hop_uphill_fraction(), None);
        assert!(study.rates_increase_over_first_hops(3));
    }

    #[test]
    fn outcomes_feed_delivered_paths_only() {
        use psn_forwarding::MessageOutcome;
        use psn_spacetime::Message;

        let rates = rates();
        let delivered = MessageOutcome {
            message: Message::new(nid(1), nid(3), 0.0),
            delivered_at: Some(20.0),
            path: Some(path(&[1, 2, 3])),
        };
        let lost = MessageOutcome {
            message: Message::new(nid(0), nid(3), 0.0),
            delivered_at: None,
            path: None,
        };
        let study = run_hop_rate_study_on_outcomes(&[delivered.clone(), lost], &rates);
        assert_eq!(study.paths, 1);
        let direct = run_hop_rate_study(&[path(&[1, 2, 3])], &rates);
        assert_eq!(study.mean_rate_per_hop.len(), direct.mean_rate_per_hop.len());
    }

    #[test]
    fn downhill_paths_are_detected() {
        let rates = rates();
        // Paths descending from the hub toward quiet nodes.
        let paths = vec![path(&[3, 2, 1]), path(&[3, 1])];
        let study = run_hop_rate_study(&paths, &rates);
        assert!(!study.rates_increase_over_first_hops(2));
        let (_, first) = study.rate_ratio_per_hop.first().unwrap();
        assert!(first.median < 1.0);
    }
}
