//! Forwarding-algorithm experiments: Figs. 9, 10, 11 and 13.
//!
//! For each dataset the driver generates the paper's Poisson message
//! workload, runs all six forwarding algorithms over the same messages,
//! averages over independent runs, and reports:
//!
//! * success rate vs. average delay per algorithm (Fig. 9);
//! * the full delay distribution per algorithm (Fig. 10);
//! * the cumulative count of deliveries over time, confirming delivery is
//!   not bursty (Fig. 11);
//! * success rate and delay broken down by source/destination pair type
//!   (Fig. 13).

use psn_forwarding::{
    standard_algorithms, AlgorithmKind, AlgorithmMetrics, ForwardingAlgorithm, MessageOutcome,
    PairType, PairTypeMetrics, Simulator, SimulatorConfig,
};
use psn_spacetime::Message;
use psn_spacetime::{MessageGenerator, MessageWorkloadConfig};
use psn_stats::BinnedSeries;
use psn_trace::{ContactRates, ContactTrace, DatasetId};

use crate::config::ExperimentProfile;
use crate::report::{Block, CellValue, Column, Scalar, Section, Series, Table};

/// Results for one algorithm on one dataset.
#[derive(Debug, Clone)]
pub struct AlgorithmStudy {
    /// Which algorithm.
    pub kind: AlgorithmKind,
    /// Metrics averaged over the simulation runs (Fig. 9 point, Fig. 10
    /// distribution).
    pub metrics: AlgorithmMetrics,
    /// Pair-type breakdown from the first run (Fig. 13 bars).
    pub by_pair_type: PairTypeMetrics,
    /// Cumulative deliveries over time from the first run (Fig. 11 series).
    pub reception_series: BinnedSeries,
    /// Raw per-message outcomes of the first run (used by Fig. 12 and the
    /// hop-rate analyses).
    pub outcomes: Vec<MessageOutcome>,
}

/// The complete forwarding study for one dataset.
#[derive(Debug)]
pub struct ForwardingStudy {
    /// Label of the scenario simulated (a dataset label like
    /// "Infocom06 9-12" or any [`psn_trace::ScenarioConfig`] name).
    pub scenario: String,
    /// Number of messages per run.
    pub messages_per_run: usize,
    /// Number of independent runs averaged.
    pub runs: usize,
    /// One entry per algorithm, in [`AlgorithmKind::all`] order.
    pub algorithms: Vec<AlgorithmStudy>,
    /// Per-node contact rates of the trace.
    pub rates: ContactRates,
}

impl ForwardingStudy {
    /// The study entry for one algorithm.
    pub fn get(&self, kind: AlgorithmKind) -> &AlgorithmStudy {
        self.algorithms
            .iter()
            .find(|a| a.kind == kind)
            .unwrap_or_else(|| unreachable!("every standard algorithm is simulated"))
    }

    /// `(success rate, average delay)` pairs per algorithm — the Fig. 9
    /// points for this dataset.
    pub fn delay_vs_success(&self) -> Vec<(AlgorithmKind, f64, Option<f64>)> {
        self.algorithms
            .iter()
            .map(|a| (a.kind, a.metrics.success_rate, a.metrics.average_delay))
            .collect()
    }

    /// The spread (max − min) of success rates across the non-epidemic
    /// algorithms — the paper's "virtually identical performance"
    /// observation quantified.
    pub fn non_epidemic_success_spread(&self) -> f64 {
        let rates: Vec<f64> = self
            .algorithms
            .iter()
            .filter(|a| a.kind != AlgorithmKind::Epidemic)
            .map(|a| a.metrics.success_rate)
            .collect();
        let max = rates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
        max - min
    }

    /// The typed Fig. 9 section: success rate vs average delay per
    /// algorithm, with per-algorithm success rates as machine-readable
    /// stats (the columns scenario sweeps aggregate).
    pub fn delay_vs_success_section(&self) -> Section {
        let mut table = Table::new(
            "delay_vs_success",
            vec![
                Column::text("algorithm"),
                Column::fixed("success_rate", 3),
                Column::fixed("average_delay_s", 1).with_unit("s"),
            ],
        );
        for (kind, success, delay) in self.delay_vs_success() {
            table.push_row(vec![
                CellValue::Text(kind.to_string()),
                CellValue::Float(success),
                CellValue::opt_float(delay),
            ]);
        }
        let mut section = Section::new();
        for algo in &self.algorithms {
            section = section.stat(Scalar::fixed(
                format!("success[{}]", algo.kind),
                algo.metrics.success_rate,
                3,
            ));
        }
        section
            .block(Block::Title(format!(
                "Figure 9 — average delay vs success rate, {} ({} messages x {} runs)",
                self.scenario, self.messages_per_run, self.runs
            )))
            .block(Block::Table(table))
            .block(Block::Scalar(Scalar::fixed(
                "success-rate spread across non-epidemic algorithms",
                self.non_epidemic_success_spread(),
                3,
            )))
    }

    /// The typed Fig. 10 section: one delay CDF per algorithm.
    pub fn delay_distributions_section(&self) -> Section {
        let mut section = Section::new()
            .block(Block::Title(format!("Figure 10 — delay distributions, {}", self.scenario)));
        for algo in &self.algorithms {
            section = match algo.metrics.delay_cdf() {
                Some(cdf) => section
                    .block(Block::Heading(algo.kind.to_string()))
                    .block(Block::Series(Series::from_ecdf("delay (s)", &cdf).downsample(60))),
                None => section.block(Block::Heading(format!("{} — no deliveries", algo.kind))),
            };
        }
        section
    }

    /// The typed Fig. 11 section: cumulative receptions over time per
    /// algorithm.
    pub fn reception_times_section(&self) -> Section {
        let mut section = Section::new().block(Block::Title(format!(
            "Figure 11 — cumulative message receptions, {}",
            self.scenario
        )));
        for algo in &self.algorithms {
            let points = algo
                .reception_series
                .cumulative()
                .into_iter()
                .map(|(t, c)| (t / 60.0, c))
                .collect();
            section = section.block(Block::Heading(algo.kind.to_string())).block(Block::Series(
                Series::new(
                    "cumulative receptions",
                    Column::fixed("minute", 0).with_unit("min"),
                    Column::fixed("cumulative_deliveries", 0),
                    points,
                ),
            ));
        }
        section
    }

    /// The typed Fig. 13 section: success rate and delay per
    /// source-destination pair type.
    pub fn pair_type_section(&self) -> Section {
        let mut table = Table::new(
            "pair_type_performance",
            vec![
                Column::text("algorithm"),
                Column::text("pair_type"),
                Column::fixed("success_rate", 3),
                Column::fixed("average_delay_s", 1).with_unit("s"),
            ],
        );
        for algo in &self.algorithms {
            for pair_type in PairType::all() {
                let metrics = algo.by_pair_type.get(pair_type);
                table.push_row(vec![
                    CellValue::Text(algo.kind.to_string()),
                    CellValue::Text(pair_type.to_string()),
                    CellValue::Float(metrics.success_rate),
                    CellValue::opt_float(metrics.average_delay),
                ]);
            }
        }
        Section::new()
            .block(Block::Title(format!(
                "Figure 13 — performance by source-destination pair type, {}",
                self.scenario
            )))
            .block(Block::Table(table))
    }
}

/// Runs the forwarding study on one dataset at the given profile, using
/// `threads` simulator worker threads (`0` = one per available core).
pub fn run_forwarding_study(
    profile: ExperimentProfile,
    dataset: DatasetId,
    threads: usize,
) -> ForwardingStudy {
    let trace = profile.dataset(dataset).generate();
    let workload = profile.workload(trace.node_count());
    run_forwarding_study_on(dataset, &trace, workload, profile.simulation_runs(), threads)
}

/// Runs the forwarding study on an explicit trace and workload — the entry
/// point used by tests and ablation benches. `threads` is the simulator
/// worker count (`0` = one per available core); it never affects results.
/// Builds private graph/timeline structures; callers that already hold
/// cached ones should use [`run_forwarding_study_shared`].
pub fn run_forwarding_study_on(
    scenario: impl Into<String>,
    trace: &ContactTrace,
    workload: MessageWorkloadConfig,
    runs: usize,
    threads: usize,
) -> ForwardingStudy {
    let simulator = Simulator::new(trace, SimulatorConfig { threads, ..Default::default() });
    let rates = ContactRates::from_trace(trace);
    run_forwarding_study_with(scenario, rates, trace.window(), simulator, workload, runs)
}

/// Runs the forwarding study around an already-built space-time graph and
/// history timeline — the artifact-store path, where both are memoized per
/// trace and shared across views, seeds and sweep cells — or a
/// bounded-window streaming graph ([`psn_spacetime::SharedGraph`] accepts
/// either representation). Results are bit-identical to
/// [`run_forwarding_study_on`] for parts built at the default Δ.
pub fn run_forwarding_study_shared(
    scenario: impl Into<String>,
    trace: &ContactTrace,
    graph: impl Into<psn_spacetime::SharedGraph>,
    timeline: std::sync::Arc<psn_forwarding::HistoryTimeline>,
    workload: MessageWorkloadConfig,
    runs: usize,
    threads: usize,
) -> ForwardingStudy {
    let graph = graph.into();
    // The simulator's Δ must match however the graph was discretized — a
    // `params.delta` sweep axis reaches here with non-default slotting.
    let delta = graph.as_graph_ref().delta();
    let simulator = Simulator::from_parts(
        trace,
        graph,
        timeline,
        SimulatorConfig { delta, threads, ..SimulatorConfig::default() },
    );
    let rates = ContactRates::from_trace(trace);
    run_forwarding_study_with(scenario, rates, trace.window(), simulator, workload, runs)
}

/// Runs the forwarding study without a materialized trace — the
/// stream-native path. Everything the study reads off the trace is folded
/// online from the event stream: per-node rates and the observation window
/// from the [`psn_trace::ContactSummary`], and the future-knowledge oracle
/// from the summary's pair counts
/// ([`psn_forwarding::TraceOracle::from_summary`]). Bit-identical to
/// [`run_forwarding_study_shared`] when the summary matches the trace.
pub fn run_forwarding_study_streamed(
    scenario: impl Into<String>,
    summary: &psn_trace::ContactSummary,
    graph: impl Into<psn_spacetime::SharedGraph>,
    timeline: std::sync::Arc<psn_forwarding::HistoryTimeline>,
    workload: MessageWorkloadConfig,
    runs: usize,
    threads: usize,
) -> ForwardingStudy {
    let graph = graph.into();
    let delta = graph.as_graph_ref().delta();
    let simulator = Simulator::from_streamed_parts(
        summary.node_count(),
        psn_forwarding::TraceOracle::from_summary(summary),
        graph,
        timeline,
        SimulatorConfig { delta, threads, ..SimulatorConfig::default() },
    );
    run_forwarding_study_with(
        scenario,
        summary.rates(),
        summary.window(),
        simulator,
        workload,
        runs,
    )
}

fn run_forwarding_study_with(
    scenario: impl Into<String>,
    rates: ContactRates,
    window: psn_trace::TimeWindow,
    simulator: Simulator,
    workload: MessageWorkloadConfig,
    runs: usize,
) -> ForwardingStudy {
    assert!(runs >= 1, "need at least one simulation run");
    let generator = MessageGenerator::new(workload);

    // The same message sets are replayed for every algorithm so the
    // comparison is paired, as in the paper.
    let message_sets: Vec<_> =
        (0..runs as u64).map(|run| generator.poisson_messages(run)).collect();
    let messages_per_run = message_sets.first().map(|m| m.len()).unwrap_or(0);

    // All algorithm × run combinations share the simulator's precomputed
    // history timeline and are sharded across the worker threads in one
    // `run_many` batch.
    let algorithm_instances = standard_algorithms();
    let jobs: Vec<(&dyn ForwardingAlgorithm, &[Message])> = algorithm_instances
        .iter()
        .flat_map(|(_, algorithm)| {
            message_sets.iter().map(move |messages| {
                (algorithm.as_ref() as &dyn ForwardingAlgorithm, messages.as_slice())
            })
        })
        .collect();
    let mut results = simulator.run_many(&jobs).into_iter();

    let window_start = window.start;
    let algorithms = algorithm_instances
        .iter()
        .map(|(kind, _)| {
            let mut per_run_metrics = Vec::with_capacity(runs);
            let mut first_outcomes: Option<Vec<MessageOutcome>> = None;
            for _ in 0..runs {
                let result = results
                    .next()
                    .unwrap_or_else(|| unreachable!("one result per algorithm × run job"));
                per_run_metrics.push(AlgorithmMetrics::from_result(&result));
                if first_outcomes.is_none() {
                    first_outcomes = Some(result.outcomes);
                }
            }
            let outcomes = first_outcomes.unwrap_or_else(|| unreachable!("at least one run"));
            let metrics = AlgorithmMetrics::average_over_runs(&per_run_metrics)
                .unwrap_or_else(|| unreachable!("at least one run"));
            let by_pair_type = PairTypeMetrics::from_outcomes(kind.label(), &outcomes, &rates);

            // Fig. 11: cumulative deliveries over the trace window, binned
            // by time *since the window start* — delivery timestamps are
            // absolute, so they must be shifted into the `[0, duration)`
            // bin range or every delivery in a nonzero-start trace is
            // silently dropped. The range extends one bin past the window
            // end because deliveries in the final slot are timestamped at
            // the slot's end, which coincides with the window boundary.
            let mut reception_series = BinnedSeries::new(0.0, window.duration() + 60.0, 60.0)
                .unwrap_or_else(|e| unreachable!("trace windows are non-empty: {e:?}"));
            for outcome in &outcomes {
                if let Some(t) = outcome.delivered_at {
                    reception_series.record(t - window_start);
                }
            }

            AlgorithmStudy { kind: *kind, metrics, by_pair_type, reception_series, outcomes }
        })
        .collect();

    ForwardingStudy { scenario: scenario.into(), messages_per_run, runs, algorithms, rates }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use psn_trace::SyntheticDataset;

    fn small_study() -> ForwardingStudy {
        let mut ds = SyntheticDataset::quick_config(DatasetId::Infocom06Morning);
        ds.config.mobile_nodes = 20;
        ds.config.stationary_nodes = 5;
        ds.config.window_seconds = 1800.0;
        let trace = ds.generate();
        let workload = MessageWorkloadConfig {
            nodes: trace.node_count(),
            generation_horizon: 1200.0,
            mean_interarrival: 20.0,
            seed: 3,
        };
        run_forwarding_study_on(DatasetId::Infocom06Morning, &trace, workload, 2, 0)
    }

    #[test]
    fn all_algorithms_are_simulated() {
        let study = small_study();
        assert_eq!(study.algorithms.len(), 6);
        assert_eq!(study.runs, 2);
        assert!(study.messages_per_run > 10);
        for kind in AlgorithmKind::all() {
            let entry = study.get(kind);
            assert_eq!(entry.kind, kind);
            assert_eq!(entry.outcomes.len(), study.messages_per_run);
        }
    }

    #[test]
    fn epidemic_dominates_every_other_algorithm() {
        let study = small_study();
        let epidemic = study.get(AlgorithmKind::Epidemic);
        for kind in AlgorithmKind::all() {
            if kind == AlgorithmKind::Epidemic {
                continue;
            }
            let other = study.get(kind);
            assert!(
                epidemic.metrics.success_rate >= other.metrics.success_rate - 1e-9,
                "epidemic success {} vs {} {}",
                epidemic.metrics.success_rate,
                kind,
                other.metrics.success_rate
            );
        }
        // Epidemic delivers something at this scale.
        assert!(epidemic.metrics.success_rate > 0.3);
    }

    #[test]
    fn per_message_dominance_of_epidemic_delay() {
        // For every message that another algorithm delivers, epidemic
        // delivers it no later (it finds the optimal path).
        let study = small_study();
        let epidemic = study.get(AlgorithmKind::Epidemic);
        for kind in
            [AlgorithmKind::Fresh, AlgorithmKind::GreedyTotal, AlgorithmKind::DynamicProgramming]
        {
            let other = study.get(kind);
            for (e, o) in epidemic.outcomes.iter().zip(&other.outcomes) {
                if let Some(other_time) = o.delivered_at {
                    let epidemic_time =
                        e.delivered_at.expect("epidemic delivers whatever anyone delivers");
                    assert!(
                        epidemic_time <= other_time + 1e-9,
                        "message {}: epidemic {} vs {} {}",
                        e.message,
                        epidemic_time,
                        kind,
                        other_time
                    );
                }
            }
        }
    }

    #[test]
    fn reception_series_accumulates_deliveries() {
        let study = small_study();
        for algo in &study.algorithms {
            let total: f64 = algo.reception_series.total();
            assert_eq!(total as usize, algo.outcomes.iter().filter(|o| o.delivered()).count());
        }
    }

    #[test]
    fn reception_series_handles_nonzero_window_start() {
        // Regression test: delivery times are absolute, so a trace window
        // starting well after t = 0 (here 36000 s — later than the series'
        // whole bin range) produced reception series that silently dropped
        // every delivery before the `t - window.start` fix.
        use psn_trace::contact::Contact;
        use psn_trace::node::{NodeClass, NodeId, NodeRegistry};
        use psn_trace::trace::{ContactTrace, TimeWindow};

        let start = 36000.0;
        let mut reg = NodeRegistry::new();
        for _ in 0..4 {
            reg.add(NodeClass::Mobile);
        }
        let contacts = vec![
            Contact::new(NodeId(0), NodeId(1), start + 15.0, start + 40.0).unwrap(),
            Contact::new(NodeId(1), NodeId(2), start + 65.0, start + 90.0).unwrap(),
            Contact::new(NodeId(2), NodeId(3), start + 115.0, start + 140.0).unwrap(),
            Contact::new(NodeId(0), NodeId(3), start + 165.0, start + 190.0).unwrap(),
        ];
        let trace = ContactTrace::from_contacts(
            "offset-window",
            reg,
            TimeWindow::new(start, start + 600.0),
            contacts,
        )
        .unwrap();
        let workload = MessageWorkloadConfig {
            nodes: trace.node_count(),
            generation_horizon: 300.0,
            mean_interarrival: 30.0,
            seed: 11,
        };
        let study = run_forwarding_study_on(DatasetId::Infocom06Morning, &trace, workload, 1, 0);
        let epidemic = study.get(AlgorithmKind::Epidemic);
        let delivered = epidemic.outcomes.iter().filter(|o| o.delivered()).count();
        assert!(delivered > 0, "epidemic should deliver something on this trace");
        for algo in &study.algorithms {
            let total: f64 = algo.reception_series.total();
            assert_eq!(
                total as usize,
                algo.outcomes.iter().filter(|o| o.delivered()).count(),
                "{}: deliveries must land inside the series bin range",
                algo.kind
            );
        }
    }

    #[test]
    fn pair_type_breakdown_covers_all_messages() {
        let study = small_study();
        for algo in &study.algorithms {
            let total: usize = algo.by_pair_type.per_type.iter().map(|(_, m)| m.messages).sum();
            assert_eq!(total, study.messages_per_run);
        }
    }

    #[test]
    fn delay_vs_success_lists_all_algorithms() {
        let study = small_study();
        let points = study.delay_vs_success();
        assert_eq!(points.len(), 6);
        let spread = study.non_epidemic_success_spread();
        assert!((0.0..=1.0).contains(&spread));
    }
}
