//! Forwarding-algorithm experiments: Figs. 9, 10, 11 and 13.
//!
//! For each dataset the driver generates the paper's Poisson message
//! workload, runs all six forwarding algorithms over the same messages,
//! averages over independent runs, and reports:
//!
//! * success rate vs. average delay per algorithm (Fig. 9);
//! * the full delay distribution per algorithm (Fig. 10);
//! * the cumulative count of deliveries over time, confirming delivery is
//!   not bursty (Fig. 11);
//! * success rate and delay broken down by source/destination pair type
//!   (Fig. 13).

use psn_forwarding::{
    standard_algorithms, AlgorithmKind, AlgorithmMetrics, MessageOutcome, PairTypeMetrics,
    Simulator, SimulatorConfig,
};
use psn_spacetime::{MessageGenerator, MessageWorkloadConfig};
use psn_stats::BinnedSeries;
use psn_trace::{ContactRates, ContactTrace, DatasetId};

use crate::config::ExperimentProfile;

/// Results for one algorithm on one dataset.
#[derive(Debug, Clone)]
pub struct AlgorithmStudy {
    /// Which algorithm.
    pub kind: AlgorithmKind,
    /// Metrics averaged over the simulation runs (Fig. 9 point, Fig. 10
    /// distribution).
    pub metrics: AlgorithmMetrics,
    /// Pair-type breakdown from the first run (Fig. 13 bars).
    pub by_pair_type: PairTypeMetrics,
    /// Cumulative deliveries over time from the first run (Fig. 11 series).
    pub reception_series: BinnedSeries,
    /// Raw per-message outcomes of the first run (used by Fig. 12 and the
    /// hop-rate analyses).
    pub outcomes: Vec<MessageOutcome>,
}

/// The complete forwarding study for one dataset.
#[derive(Debug)]
pub struct ForwardingStudy {
    /// The dataset simulated.
    pub dataset: DatasetId,
    /// Number of messages per run.
    pub messages_per_run: usize,
    /// Number of independent runs averaged.
    pub runs: usize,
    /// One entry per algorithm, in [`AlgorithmKind::all`] order.
    pub algorithms: Vec<AlgorithmStudy>,
    /// Per-node contact rates of the trace.
    pub rates: ContactRates,
}

impl ForwardingStudy {
    /// The study entry for one algorithm.
    pub fn get(&self, kind: AlgorithmKind) -> &AlgorithmStudy {
        self.algorithms
            .iter()
            .find(|a| a.kind == kind)
            .expect("every standard algorithm is simulated")
    }

    /// `(success rate, average delay)` pairs per algorithm — the Fig. 9
    /// points for this dataset.
    pub fn delay_vs_success(&self) -> Vec<(AlgorithmKind, f64, Option<f64>)> {
        self.algorithms
            .iter()
            .map(|a| (a.kind, a.metrics.success_rate, a.metrics.average_delay))
            .collect()
    }

    /// The spread (max − min) of success rates across the non-epidemic
    /// algorithms — the paper's "virtually identical performance"
    /// observation quantified.
    pub fn non_epidemic_success_spread(&self) -> f64 {
        let rates: Vec<f64> = self
            .algorithms
            .iter()
            .filter(|a| a.kind != AlgorithmKind::Epidemic)
            .map(|a| a.metrics.success_rate)
            .collect();
        let max = rates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
        max - min
    }
}

/// Runs the forwarding study on one dataset at the given profile.
pub fn run_forwarding_study(profile: ExperimentProfile, dataset: DatasetId) -> ForwardingStudy {
    let trace = profile.dataset(dataset).generate();
    let workload = profile.workload(trace.node_count());
    run_forwarding_study_on(dataset, &trace, workload, profile.simulation_runs())
}

/// Runs the forwarding study on an explicit trace and workload — the entry
/// point used by tests and ablation benches.
pub fn run_forwarding_study_on(
    dataset: DatasetId,
    trace: &ContactTrace,
    workload: MessageWorkloadConfig,
    runs: usize,
) -> ForwardingStudy {
    assert!(runs >= 1, "need at least one simulation run");
    let simulator = Simulator::new(trace, SimulatorConfig::default());
    let rates = ContactRates::from_trace(trace);
    let generator = MessageGenerator::new(workload);

    // The same message sets are replayed for every algorithm so the
    // comparison is paired, as in the paper.
    let message_sets: Vec<_> =
        (0..runs as u64).map(|run| generator.poisson_messages(run)).collect();
    let messages_per_run = message_sets.first().map(|m| m.len()).unwrap_or(0);

    let algorithms = standard_algorithms()
        .into_iter()
        .map(|(kind, algorithm)| {
            let mut per_run_metrics = Vec::with_capacity(runs);
            let mut first_outcomes: Option<Vec<MessageOutcome>> = None;
            for messages in &message_sets {
                let result = simulator.run(algorithm.as_ref(), messages);
                per_run_metrics.push(AlgorithmMetrics::from_result(&result));
                if first_outcomes.is_none() {
                    first_outcomes = Some(result.outcomes);
                }
            }
            let outcomes = first_outcomes.expect("at least one run");
            let metrics =
                AlgorithmMetrics::average_over_runs(&per_run_metrics).expect("at least one run");
            let by_pair_type = PairTypeMetrics::from_outcomes(kind.label(), &outcomes, &rates);

            // Fig. 11: cumulative deliveries over the trace window. The
            // range extends one bin past the window end because deliveries
            // in the final slot are timestamped at the slot's end, which
            // coincides with the window boundary.
            let mut reception_series =
                BinnedSeries::new(0.0, trace.window().duration() + 60.0, 60.0)
                    .expect("trace windows are non-empty");
            for outcome in &outcomes {
                if let Some(t) = outcome.delivered_at {
                    reception_series.record(t);
                }
            }

            AlgorithmStudy { kind, metrics, by_pair_type, reception_series, outcomes }
        })
        .collect();

    ForwardingStudy { dataset, messages_per_run, runs, algorithms, rates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psn_trace::SyntheticDataset;

    fn small_study() -> ForwardingStudy {
        let mut ds = SyntheticDataset::quick_config(DatasetId::Infocom06Morning);
        ds.config.mobile_nodes = 20;
        ds.config.stationary_nodes = 5;
        ds.config.window_seconds = 1800.0;
        let trace = ds.generate();
        let workload = MessageWorkloadConfig {
            nodes: trace.node_count(),
            generation_horizon: 1200.0,
            mean_interarrival: 20.0,
            seed: 3,
        };
        run_forwarding_study_on(DatasetId::Infocom06Morning, &trace, workload, 2)
    }

    #[test]
    fn all_algorithms_are_simulated() {
        let study = small_study();
        assert_eq!(study.algorithms.len(), 6);
        assert_eq!(study.runs, 2);
        assert!(study.messages_per_run > 10);
        for kind in AlgorithmKind::all() {
            let entry = study.get(kind);
            assert_eq!(entry.kind, kind);
            assert_eq!(entry.outcomes.len(), study.messages_per_run);
        }
    }

    #[test]
    fn epidemic_dominates_every_other_algorithm() {
        let study = small_study();
        let epidemic = study.get(AlgorithmKind::Epidemic);
        for kind in AlgorithmKind::all() {
            if kind == AlgorithmKind::Epidemic {
                continue;
            }
            let other = study.get(kind);
            assert!(
                epidemic.metrics.success_rate >= other.metrics.success_rate - 1e-9,
                "epidemic success {} vs {} {}",
                epidemic.metrics.success_rate,
                kind,
                other.metrics.success_rate
            );
        }
        // Epidemic delivers something at this scale.
        assert!(epidemic.metrics.success_rate > 0.3);
    }

    #[test]
    fn per_message_dominance_of_epidemic_delay() {
        // For every message that another algorithm delivers, epidemic
        // delivers it no later (it finds the optimal path).
        let study = small_study();
        let epidemic = study.get(AlgorithmKind::Epidemic);
        for kind in
            [AlgorithmKind::Fresh, AlgorithmKind::GreedyTotal, AlgorithmKind::DynamicProgramming]
        {
            let other = study.get(kind);
            for (e, o) in epidemic.outcomes.iter().zip(&other.outcomes) {
                if let Some(other_time) = o.delivered_at {
                    let epidemic_time =
                        e.delivered_at.expect("epidemic delivers whatever anyone delivers");
                    assert!(
                        epidemic_time <= other_time + 1e-9,
                        "message {}: epidemic {} vs {} {}",
                        e.message,
                        epidemic_time,
                        kind,
                        other_time
                    );
                }
            }
        }
    }

    #[test]
    fn reception_series_accumulates_deliveries() {
        let study = small_study();
        for algo in &study.algorithms {
            let total: f64 = algo.reception_series.total();
            assert_eq!(total as usize, algo.outcomes.iter().filter(|o| o.delivered()).count());
        }
    }

    #[test]
    fn pair_type_breakdown_covers_all_messages() {
        let study = small_study();
        for algo in &study.algorithms {
            let total: usize = algo.by_pair_type.per_type.iter().map(|(_, m)| m.messages).sum();
            assert_eq!(total, study.messages_per_run);
        }
    }

    #[test]
    fn delay_vs_success_lists_all_algorithms() {
        let study = small_study();
        let points = study.delay_vs_success();
        assert_eq!(points.len(), 6);
        let spread = study.non_epidemic_success_spread();
        assert!((0.0..=1.0).contains(&spread));
    }
}
