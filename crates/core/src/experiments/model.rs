//! Analytic-model validation (paper §5.1).
//!
//! The paper supports the path-explosion observation with a homogeneous
//! analytic model. This driver checks, for a grid of population sizes and
//! contact rates, that the three implementations of the model agree:
//!
//! * the stochastic jump process (exact finite-N dynamics),
//! * the truncated ODE / Kurtz limit,
//! * the closed-form mean `E[Sₙ(t)] = E[Sₙ(0)] e^{λt}`.
//!
//! It also evaluates the two-class model's predictions for the four pair
//! types, which the trace experiments compare against.

use psn_analytic::{
    convergence_error, mean_paths, HomogeneousModel, JumpProcessConfig, PathCountJumpProcess,
    TwoClassModel, TwoClassPrediction,
};

use crate::report::{Block, CellValue, Column, Section, Table};

/// Agreement measurements for one (N, λ) configuration.
#[derive(Debug, Clone)]
pub struct ModelAgreement {
    /// Population size.
    pub nodes: usize,
    /// Contact rate λ.
    pub lambda: f64,
    /// Horizon of the comparison (seconds).
    pub horizon: f64,
    /// Mean path count at the horizon: closed form.
    pub closed_form_mean: f64,
    /// Mean path count at the horizon: stochastic simulation.
    pub simulated_mean: f64,
    /// Mean path count at the horizon: truncated ODE.
    pub ode_mean: f64,
    /// Sup-difference between the simulated and ODE path-count densities
    /// over the first few states (Kurtz-limit check).
    pub density_error: f64,
}

impl ModelAgreement {
    /// Relative error of the simulated mean against the closed form.
    pub fn simulation_relative_error(&self) -> f64 {
        (self.simulated_mean - self.closed_form_mean).abs() / self.closed_form_mean.max(1e-12)
    }

    /// Relative error of the ODE mean against the closed form.
    pub fn ode_relative_error(&self) -> f64 {
        (self.ode_mean - self.closed_form_mean).abs() / self.closed_form_mean.max(1e-12)
    }
}

/// The complete model-validation result.
#[derive(Debug, Clone)]
pub struct ModelValidation {
    /// One agreement record per (N, λ) configuration.
    pub agreements: Vec<ModelAgreement>,
    /// Two-class predictions for a representative in/out rate split.
    pub two_class: Vec<TwoClassPrediction>,
}

impl ModelValidation {
    /// The typed §5.1/§5.2 section: the three-implementation agreement
    /// table and the two-class predictions.
    pub fn section(&self) -> Section {
        let mut agreement = Table::new(
            "model_agreement",
            vec![
                Column::int("nodes"),
                Column::display("lambda").with_unit("contacts/s"),
                Column::fixed("horizon_s", 0).with_unit("s"),
                Column::fixed("closed_form_mean", 4),
                Column::fixed("simulated_mean", 4),
                Column::fixed("ode_mean", 4),
                Column::fixed("density_error", 4),
            ],
        );
        for a in &self.agreements {
            agreement.push_row(vec![
                CellValue::Int(a.nodes as u64),
                CellValue::Float(a.lambda),
                CellValue::Float(a.horizon),
                CellValue::Float(a.closed_form_mean),
                CellValue::Float(a.simulated_mean),
                CellValue::Float(a.ode_mean),
                CellValue::Float(a.density_error),
            ]);
        }
        let mut two_class = Table::new(
            "two_class_predictions",
            vec![
                Column::text("pair_class"),
                Column::fixed("expected_T1_s", 0).with_unit("s"),
                Column::fixed("expected_TE_s", 0).with_unit("s"),
            ],
        );
        for p in &self.two_class {
            two_class.push_row(vec![
                CellValue::Text(p.class.to_string()),
                CellValue::Float(p.expected_t1),
                CellValue::Float(p.expected_te),
            ]);
        }
        Section::new()
            .block(Block::Title("Section 5.1 — analytic model validation".into()))
            .block(Block::Table(agreement))
            .block(Block::Note("Section 5.2 — two-class (in/out) model predictions".into()))
            .block(Block::Table(two_class))
    }
}

/// Runs the model validation over a small grid of configurations.
///
/// `replications` controls the stochastic side's averaging; the figure
/// binary uses a large value, the tests a small one.
pub fn run_model_validation(replications: usize) -> ModelValidation {
    let configs = [(100usize, 0.02f64, 150.0f64), (200, 0.02, 150.0), (200, 0.05, 80.0)];
    let agreements = configs
        .iter()
        .map(|&(nodes, lambda, horizon)| {
            let closed_form_mean = mean_paths(1.0 / nodes as f64, lambda, horizon);

            let jump = PathCountJumpProcess::new(JumpProcessConfig::with_even_samples(
                nodes,
                lambda,
                horizon,
                1,
                replications,
                0xA11A,
            ))
            .run();
            let simulated_mean =
                *jump.mean_paths.last().unwrap_or_else(|| unreachable!("one sample requested"));

            let model = HomogeneousModel::new(lambda, 120);
            let solution = model.integrate(nodes, horizon, horizon / 600.0);
            let ode_mean = model.density_at(&solution, horizon).mean();

            let density_error =
                convergence_error(nodes, lambda, horizon, 6, replications.min(20), 0xBEE);

            ModelAgreement {
                nodes,
                lambda,
                horizon,
                closed_form_mean,
                simulated_mean,
                ode_mean,
                density_error,
            }
        })
        .collect();

    // A representative two-class split: 'in' nodes at 0.03 contacts/s, 'out'
    // nodes at 0.006 contacts/s, half the population each (matching the
    // synthetic Infocom-like traces).
    let two_class = TwoClassModel::new(0.03, 0.006, 49, 49, 2000).predict_all();

    ModelValidation { agreements, two_class }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use psn_analytic::PairClass;

    #[test]
    fn implementations_agree() {
        let validation = run_model_validation(15);
        assert_eq!(validation.agreements.len(), 3);
        for a in &validation.agreements {
            assert!(
                a.ode_relative_error() < 0.1,
                "ODE vs closed form at N={} λ={}: {}",
                a.nodes,
                a.lambda,
                a.ode_relative_error()
            );
            assert!(
                a.simulation_relative_error() < 0.5,
                "simulation vs closed form at N={} λ={}: {}",
                a.nodes,
                a.lambda,
                a.simulation_relative_error()
            );
            assert!(a.density_error < 0.15, "density error {}", a.density_error);
        }
    }

    #[test]
    fn two_class_predictions_cover_all_pair_classes() {
        let validation = run_model_validation(5);
        assert_eq!(validation.two_class.len(), 4);
        let classes: Vec<PairClass> = validation.two_class.iter().map(|p| p.class).collect();
        for c in PairClass::all() {
            assert!(classes.contains(&c));
        }
    }
}
