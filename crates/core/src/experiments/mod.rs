//! Experiment drivers — one module per group of figures in the paper.
//!
//! | Module | Paper figures | Content |
//! |---|---|---|
//! | [`activity`] | Fig. 1, Fig. 7 | contact time-series per dataset, per-node contact-count CDFs |
//! | [`explosion`] | Fig. 4, 5, 6, 8 | optimal-duration / time-to-explosion CDFs, scatter, growth curves, pair-type split |
//! | [`forwarding`] | Fig. 9, 10, 11, 13 | success-rate vs delay per algorithm, delay CDFs, reception times, pair-type breakdown |
//! | [`paths_taken`] | Fig. 12 | per-message path-arrival bursts and the arrival of each algorithm's chosen path |
//! | [`hop_rates`] | Fig. 14, 15 | mean contact rate per hop of near-optimal paths, per-hop rate-ratio box plots |
//! | [`model`] | §5.1 | agreement between the jump process, the ODE limit and the closed forms |
//!
//! Every driver takes an [`crate::ExperimentProfile`] so the same code path
//! serves the integration tests (quick) and the paper-scale figure presets.
//! The drivers are scenario-agnostic: each `run_*_on` entry point takes an
//! explicit trace plus a section label, and the [`crate::study`] pipeline
//! feeds any [`psn_trace::ScenarioConfig`] through them.

pub mod activity;
pub mod explosion;
pub mod forwarding;
pub mod hop_rates;
pub mod model;
pub mod paths_taken;

pub use activity::{contact_rate_cdfs, contact_timeseries, ActivityReport};
pub use explosion::{run_explosion_study, ExplosionStudy, PairTypeScatter};
pub use forwarding::{run_forwarding_study, ForwardingStudy};
pub use hop_rates::{run_hop_rate_study, HopRateStudy};
pub use model::{run_model_validation, ModelValidation};
pub use paths_taken::{run_paths_taken, PathsTakenCase};
