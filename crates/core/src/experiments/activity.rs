//! Contact activity experiments: Fig. 1 (contact time series) and Fig. 7
//! (per-node contact-count CDFs).

use psn_stats::{BinnedSeries, Ecdf};
use psn_trace::binning::contact_timeseries_per_minute;
use psn_trace::{ContactRates, ContactTrace, DatasetId};

use crate::config::ExperimentProfile;
use crate::report::{Block, Column, Scalar, Section, Series};

/// The activity data for one dataset.
#[derive(Debug, Clone)]
pub struct ActivityReport {
    /// Label of the scenario this report describes.
    pub scenario: String,
    /// Total contacts per one-minute bin (Fig. 1 series).
    pub per_minute: BinnedSeries,
    /// Coefficient of variation of the per-minute counts (stationarity
    /// check).
    pub coefficient_of_variation: f64,
    /// Mean of the final 30 minutes relative to the overall mean (the
    /// afternoon drop-off diagnostic).
    pub tail_ratio: f64,
    /// CDF of per-node contact counts (Fig. 7 series).
    pub contact_count_cdf: Ecdf,
    /// Kolmogorov–Smirnov distance of the contact-count distribution from a
    /// uniform distribution on `[0, max]` (the paper's "approximately
    /// uniform" observation).
    pub uniformity_ks: f64,
}

impl ActivityReport {
    /// The typed Fig. 1 section: contacts per minute, with the
    /// stationarity diagnostics as machine-readable stats.
    pub fn timeseries_section(&self) -> Section {
        let points = self.per_minute.series().into_iter().map(|(t, c)| (t / 60.0, c)).collect();
        Section::new()
            .stat(Scalar::fixed("cv", self.coefficient_of_variation, 3))
            .stat(Scalar::fixed("tail_ratio", self.tail_ratio, 3))
            .block(Block::Title(format!(
                "Figure 1 — total contacts per minute, {} (cv={:.3}, tail ratio={:.3})",
                self.scenario, self.coefficient_of_variation, self.tail_ratio
            )))
            .block(Block::Series(Series::new(
                "contacts per minute",
                Column::fixed("minute", 0).with_unit("min"),
                Column::display("contacts"),
                points,
            )))
    }

    /// The typed Fig. 7 section: the per-node contact-count CDF.
    pub fn contact_cdf_section(&self) -> Section {
        Section::new()
            .stat(Scalar::fixed("uniformity_ks", self.uniformity_ks, 3))
            .block(Block::Title(format!(
                "Figure 7 — per-node contact count CDF, {} (KS distance to uniform = {:.3})",
                self.scenario, self.uniformity_ks
            )))
            .block(Block::Series(
                Series::from_ecdf("contact counts", &self.contact_count_cdf).downsample(120),
            ))
    }
}

/// Computes the Fig. 1 contact time series for one trace.
pub fn contact_timeseries(trace: &ContactTrace) -> BinnedSeries {
    contact_timeseries_per_minute(trace)
}

/// Computes the Fig. 7 per-node contact-count CDF for one trace.
pub fn contact_rate_cdfs(trace: &ContactTrace) -> Option<Ecdf> {
    ContactRates::from_trace(trace).count_cdf()
}

/// Runs the activity analysis for all four datasets at the given profile.
pub fn run_activity_study(profile: ExperimentProfile) -> Vec<ActivityReport> {
    DatasetId::all()
        .into_iter()
        .map(|id| {
            let trace = profile.dataset(id).generate();
            activity_report(id, &trace)
        })
        .collect()
}

/// Builds the activity report for one already-generated trace.
pub fn activity_report(scenario: impl Into<String>, trace: &ContactTrace) -> ActivityReport {
    activity_report_from_parts(scenario, contact_timeseries(trace), ContactRates::from_trace(trace))
}

/// Builds the activity report without a materialized trace — the
/// stream-native path, where both the per-minute series and the per-node
/// rates were folded online from the event stream. Bit-identical to
/// [`activity_report`] when the summary matches the trace.
pub fn activity_report_streamed(
    scenario: impl Into<String>,
    summary: &psn_trace::ContactSummary,
) -> ActivityReport {
    activity_report_from_parts(scenario, summary.per_minute().clone(), summary.rates())
}

fn activity_report_from_parts(
    scenario: impl Into<String>,
    per_minute: BinnedSeries,
    rates: ContactRates,
) -> ActivityReport {
    let stationarity = psn_trace::binning::stationarity_from_series(&per_minute)
        .unwrap_or_else(|| unreachable!("generated datasets always contain contacts"));
    ActivityReport {
        scenario: scenario.into(),
        per_minute,
        coefficient_of_variation: stationarity.coefficient_of_variation,
        tail_ratio: stationarity.tail_ratio,
        contact_count_cdf: rates.count_cdf().unwrap_or_else(|| unreachable!("non-empty trace")),
        uniformity_ks: rates.uniformity_ks().unwrap_or(1.0),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn quick_study_covers_all_datasets() {
        let reports = run_activity_study(ExperimentProfile::Quick);
        assert_eq!(reports.len(), 4);
        for report in &reports {
            assert!(report.per_minute.total() > 0.0, "{:?}", report.scenario);
            assert!(!report.contact_count_cdf.is_empty());
            // The synthetic traces keep the paper's roughly uniform
            // contact-count distribution.
            assert!(
                report.uniformity_ks < 0.35,
                "{:?}: ks = {}",
                report.scenario,
                report.uniformity_ks
            );
        }
    }

    #[test]
    fn afternoon_datasets_show_stronger_tail_dropoff() {
        let reports = run_activity_study(ExperimentProfile::Quick);
        let get = |id: DatasetId| {
            reports.iter().find(|r| r.scenario == id.label()).expect("present").tail_ratio
        };
        assert!(
            get(DatasetId::Infocom06Afternoon) < get(DatasetId::Infocom06Morning),
            "afternoon should drop off more than morning"
        );
        assert!(get(DatasetId::Conext06Afternoon) < get(DatasetId::Conext06Morning));
    }

    #[test]
    fn single_trace_helpers() {
        let trace = ExperimentProfile::Quick.dataset(DatasetId::Conext06Morning).generate();
        let series = contact_timeseries(&trace);
        assert_eq!(series.bin_width(), 60.0);
        assert!(contact_rate_cdfs(&trace).is_some());
    }
}
