//! Path-explosion experiments: Figs. 4, 5, 6 and 8.
//!
//! For a population of uniformly drawn messages the driver enumerates valid
//! paths (in parallel across messages), builds per-message
//! [`ExplosionProfile`]s and aggregates:
//!
//! * the CDF of optimal path durations (Fig. 4a) and of times to explosion
//!   (Fig. 4b);
//! * the `(T₁, TE)` scatter (Fig. 5), also split by source/destination pair
//!   type (Fig. 8);
//! * the path-arrival growth histogram for slow-explosion messages
//!   (Fig. 6);
//! * summary statistics quoted in the text (fraction of messages with
//!   optimal duration over 1000 s, fraction with TE ≤ 150 s, correlation
//!   between T₁ and TE).

use std::sync::atomic::{AtomicUsize, Ordering};

use psn_spacetime::{
    EnumerationConfig, ExplosionProfile, ExplosionSummary, GraphRef, Message, MessageGenerator,
    Path, PathEnumerator, SpaceTimeGraph,
};
use psn_stats::{correlation, Histogram};
use psn_trace::{ContactRates, ContactTrace, DatasetId, Seconds};

use crate::config::ExperimentProfile;
use crate::report::{Block, Column, Scalar, Section, Series};
use psn_forwarding::{classify_message, PairType};

/// Messages per worker claim: one slot-major [`PathEnumerator::enumerate_batch`]
/// sweep amortizes cold-slot reloads across the chunk, while a small chunk
/// keeps work-stealing granular enough to balance wildly varying
/// per-message cost.
const ENUMERATION_CHUNK: usize = 8;

/// Scatter points `(optimal duration, time to explosion)` for one pair type
/// (one panel of Fig. 8).
#[derive(Debug, Clone)]
pub struct PairTypeScatter {
    /// The pair type of the panel.
    pub pair_type: PairType,
    /// The scatter points.
    pub points: Vec<(Seconds, Seconds)>,
}

/// The complete result of the path-explosion study on one dataset.
#[derive(Debug)]
pub struct ExplosionStudy {
    /// Label of the scenario analysed (a dataset label like
    /// "Infocom06 9-12" or any [`psn_trace::ScenarioConfig`] name).
    pub scenario: String,
    /// Explosion threshold used (2000 at paper scale).
    pub explosion_threshold: usize,
    /// Aggregated per-message profiles.
    pub summary: ExplosionSummary,
    /// Scatter panels split by pair type (Fig. 8).
    pub by_pair_type: Vec<PairTypeScatter>,
    /// Path-arrival histogram (time since T₁, number of paths) over messages
    /// whose time-to-explosion exceeded `slow_te_cutoff` (Fig. 6).
    pub slow_growth_histogram: Option<Histogram>,
    /// The TE cutoff used for the slow-growth histogram (150 s in the
    /// paper).
    pub slow_te_cutoff: Seconds,
    /// Pearson correlation between T₁ and TE over exploded messages; the
    /// paper's Fig. 5 argues there is no clear relationship.
    pub t1_te_correlation: Option<f64>,
    /// Sample near-optimal paths retained for the per-hop analyses
    /// (Figs. 14–15).
    pub sample_paths: Vec<Path>,
    /// Per-node contact rates of the trace (shared by downstream analyses).
    pub rates: ContactRates,
}

impl ExplosionStudy {
    /// Fraction of delivered messages whose optimal path duration exceeds
    /// `threshold` seconds (the paper quotes "over 25% require over 1000
    /// seconds").
    pub fn fraction_optimal_duration_above(&self, threshold: Seconds) -> Option<f64> {
        let cdf = self.summary.optimal_duration_cdf()?;
        Some(cdf.survival(threshold))
    }

    /// Fraction of exploded messages whose time to explosion is at most
    /// `threshold` seconds (the paper quotes "97% have TE ≤ 150 s").
    pub fn fraction_te_below(&self, threshold: Seconds) -> Option<f64> {
        let cdf = self.summary.time_to_explosion_cdf()?;
        Some(cdf.eval(threshold))
    }

    fn scatter_columns() -> (Column, Column) {
        (
            Column::fixed("optimal_duration_s", 1).with_unit("s"),
            Column::fixed("time_to_explosion_s", 1).with_unit("s"),
        )
    }

    /// The typed Fig. 4 section: optimal-duration and time-to-explosion
    /// CDFs plus the headline fractions the paper quotes.
    pub fn cdfs_section(&self) -> Section {
        let mut section = Section::new()
            .stat(Scalar::display("messages", self.summary.len() as f64))
            .stat(Scalar::fixed("delivery_fraction", self.summary.delivery_fraction(), 3))
            .block(Block::Title(format!(
                "Figure 4 — {} ({} messages, threshold {} paths)",
                self.scenario,
                self.summary.len(),
                self.explosion_threshold
            )));
        section = match self.summary.optimal_duration_cdf() {
            Some(cdf) => section.block(Block::Series(
                Series::from_ecdf("optimal path duration (s)", &cdf).downsample(100),
            )),
            None => section.block(Block::Note("no message was delivered".into())),
        };
        section = match self.summary.time_to_explosion_cdf() {
            Some(cdf) => section.block(Block::Series(
                Series::from_ecdf("time to explosion (s)", &cdf).downsample(100),
            )),
            None => section.block(Block::Note("no message reached the explosion threshold".into())),
        };
        if let Some(f) = self.fraction_optimal_duration_above(1000.0) {
            section = section.block(Block::Scalar(Scalar::fixed(
                "fraction with optimal duration > 1000 s",
                f,
                3,
            )));
        }
        if let Some(f) = self.fraction_te_below(150.0) {
            section =
                section.block(Block::Scalar(Scalar::fixed("fraction with TE <= 150 s", f, 3)));
        }
        section
    }

    /// The typed Fig. 5 section: the `(T₁, TE)` scatter.
    pub fn scatter_section(&self) -> Section {
        let mut section = Section::new().block(Block::Title(format!(
            "Figure 5 — optimal path duration vs time to explosion, {}",
            self.scenario
        )));
        if let Some(r) = self.t1_te_correlation {
            section = section.block(Block::Scalar(Scalar::fixed("Pearson correlation", r, 3)));
        }
        let (x, y) = Self::scatter_columns();
        section.block(Block::Series(Series::new("t1 vs te", x, y, self.summary.scatter_points())))
    }

    /// The typed Fig. 6 section: the slow-explosion growth histogram.
    pub fn growth_section(&self) -> Section {
        let section = Section::new().block(Block::Title(format!(
            "Figure 6 — path arrivals since T1 for messages with TE >= {} s, {}",
            self.slow_te_cutoff, self.scenario
        )));
        match &self.slow_growth_histogram {
            Some(h) => section.block(Block::Series(Series::new(
                "slow growth",
                Column::fixed("seconds_since_T1", 0).with_unit("s"),
                Column::fixed("paths", 0),
                h.series(),
            ))),
            None => {
                section.block(Block::Note("no message had a slow explosion at this scale".into()))
            }
        }
    }

    /// The typed Fig. 8 section: one scatter panel per pair type.
    pub fn pair_type_section(&self) -> Section {
        let mut section = Section::new().block(Block::Title(format!(
            "Figure 8 — optimal duration vs time to explosion by pair type, {}",
            self.scenario
        )));
        for panel in &self.by_pair_type {
            let (x, y) = Self::scatter_columns();
            section = section
                .block(Block::Heading(format!(
                    "{} ({} messages)",
                    panel.pair_type,
                    panel.points.len()
                )))
                .block(Block::Series(Series::new(
                    panel.pair_type.to_string(),
                    x,
                    y,
                    panel.points.clone(),
                )));
        }
        section
    }
}

/// Runs the explosion study on one dataset at the given profile, using
/// `threads` worker threads for per-message enumeration.
pub fn run_explosion_study(
    profile: ExperimentProfile,
    dataset: DatasetId,
    threads: usize,
) -> ExplosionStudy {
    let trace = profile.dataset(dataset).generate();
    let generator = MessageGenerator::new(psn_spacetime::MessageWorkloadConfig {
        nodes: trace.node_count(),
        generation_horizon: (trace.window().duration() * 2.0 / 3.0).max(1.0),
        mean_interarrival: 4.0,
        seed: 0xEC0,
    });
    let messages = generator.uniform_messages(profile.enumeration_messages());
    run_explosion_study_on(
        dataset,
        &trace,
        &messages,
        profile.enumeration_config(),
        profile.explosion_threshold(),
        threads,
    )
}

/// Runs the explosion study on an explicit trace and message set — the entry
/// point used by tests and by ablation benchmarks that vary Δ, k or the
/// trace generator. Builds a private default-Δ space-time graph; callers
/// that already hold a (possibly cached) graph for this trace should use
/// [`run_explosion_study_on_graph`].
pub fn run_explosion_study_on(
    scenario: impl Into<String>,
    trace: &ContactTrace,
    messages: &[Message],
    enumeration: EnumerationConfig,
    explosion_threshold: usize,
    threads: usize,
) -> ExplosionStudy {
    let graph = SpaceTimeGraph::build_default(trace);
    run_explosion_study_on_graph(
        scenario,
        trace,
        &graph,
        messages,
        enumeration,
        explosion_threshold,
        threads,
    )
}

/// Runs the explosion study against an already-built space-time graph —
/// the artifact-store path, where one graph is memoized per trace and
/// shared across views, seeds and sweep cells — or a bounded-window
/// streaming graph ([`GraphRef`] accepts either representation). The graph
/// must belong to `trace`; results are identical to
/// [`run_explosion_study_on`] when it was built with the default Δ.
///
/// # Panics
///
/// Panics if the graph was built from a different trace, or when a
/// worker panicked mid-enumeration (e.g. a chaos-armed failpoint) — the
/// first worker panic is re-raised once on the calling thread.
pub fn run_explosion_study_on_graph<'a>(
    scenario: impl Into<String>,
    trace: &ContactTrace,
    graph: impl Into<GraphRef<'a>>,
    messages: &[Message],
    enumeration: EnumerationConfig,
    explosion_threshold: usize,
    threads: usize,
) -> ExplosionStudy {
    let graph = graph.into();
    assert_eq!(graph.node_count(), trace.node_count(), "graph belongs to a different trace");
    run_explosion_study_streamed(
        scenario,
        ContactRates::from_trace(trace),
        graph,
        messages,
        enumeration,
        explosion_threshold,
        threads,
    )
}

/// Runs the explosion study without a materialized trace — the stream-native
/// path, where the per-node contact rates (the only trace statistic this
/// study reads) are folded online from the event stream
/// ([`psn_trace::ContactSummary::rates`]). Bit-identical to
/// [`run_explosion_study_on_graph`] when the rates match the trace.
///
/// # Panics
///
/// As [`run_explosion_study_on_graph`]; the graph must cover the same node
/// population the rates were folded over.
pub fn run_explosion_study_streamed<'a>(
    scenario: impl Into<String>,
    rates: ContactRates,
    graph: impl Into<GraphRef<'a>>,
    messages: &[Message],
    enumeration: EnumerationConfig,
    explosion_threshold: usize,
    threads: usize,
) -> ExplosionStudy {
    let graph = graph.into();
    assert_eq!(graph.node_count(), rates.node_count(), "graph belongs to a different population");
    let threads = threads.max(1);

    // Enumerate messages in parallel; each worker claims a *chunk* of
    // message indices off a lock-free fetch-add counter and runs the chunk
    // as one slot-major `enumerate_batch` sweep: over a bounded-window
    // graph every slot the chunk needs is reloaded at most once for the
    // whole chunk instead of once per message, and results are unchanged
    // because messages enumerate independently. Chunks keep the work
    // balanced even though per-message cost varies wildly (out-out
    // messages cost far more than in-in ones). Results accumulate in
    // per-worker vectors that are merged after the join, so the hot loop
    // takes no locks at all.
    //
    // Each job runs under `catch_unwind`: a panicking chunk cannot take
    // its sibling threads down mid-job. The first panic is recorded,
    // remaining workers drain (they stop claiming new work), and the panic
    // is re-raised once on the calling thread — one clean failure the
    // study layer can isolate to its cell.
    // Both chunk sweeps and message restarts walk busy slots in ascending
    // order: declare the sequential plan so a windowed graph keeps the
    // sweep prefix hot across chunk boundaries instead of FIFO-thrashing.
    graph.advise_sequential(true);
    let next = AtomicUsize::new(0);
    let abort = std::sync::atomic::AtomicBool::new(false);
    let first_panic: std::sync::Mutex<Option<String>> = std::sync::Mutex::new(None);
    let mut per_worker: Vec<Vec<(usize, ExplosionProfile, Vec<Path>)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let enumerator = PathEnumerator::new(graph, enumeration.clone());
                        let mut scratches: Vec<psn_spacetime::EnumerationScratch> = Vec::new();
                        let mut local = Vec::new();
                        loop {
                            // relaxed: advisory abort flag; a stale read only costs one extra job.
                            if abort.load(Ordering::Relaxed) {
                                break;
                            }
                            // relaxed: work-stealing claim counter; each chunk is claimed once and results are joined, which orders the data.
                            let start = next.fetch_add(ENUMERATION_CHUNK, Ordering::Relaxed);
                            if start >= messages.len() {
                                break;
                            }
                            let end = (start + ENUMERATION_CHUNK).min(messages.len());
                            let chunk = &messages[start..end];
                            let job =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    psn_fault::inject_job(psn_fault::sites::QUEUE_EXPLOSION);
                                    let results = enumerator.enumerate_batch(chunk, &mut scratches);
                                    results
                                        .into_iter()
                                        .enumerate()
                                        .map(|(offset, result)| {
                                            let profile = ExplosionProfile::with_threshold(
                                                &result,
                                                explosion_threshold,
                                            );
                                            (start + offset, profile, result.sample_paths)
                                        })
                                        .collect::<Vec<_>>()
                                }));
                            match job {
                                Ok(mut items) => local.append(&mut items),
                                Err(payload) => {
                                    // relaxed: advisory abort flag; a stale read only costs one extra job.
                                    abort.store(true, Ordering::Relaxed);
                                    let mut slot = first_panic
                                        .lock()
                                        .unwrap_or_else(|poison| poison.into_inner());
                                    slot.get_or_insert_with(|| {
                                        psn_fault::panic_message(payload.as_ref())
                                    });
                                    break;
                                }
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|e| {
                        unreachable!("enumeration workers catch their own panics: {e:?}")
                    })
                })
                .collect()
        });
    graph.advise_sequential(false);
    if let Some(message) = first_panic.into_inner().unwrap_or_else(|poison| poison.into_inner()) {
        panic!("enumeration worker panicked: {message}");
    }

    let mut collected: Vec<(usize, ExplosionProfile, Vec<Path>)> =
        per_worker.iter_mut().flat_map(std::mem::take).collect();
    collected.sort_by_key(|(idx, _, _)| *idx);

    let mut summary = ExplosionSummary::new();
    let mut by_type: Vec<PairTypeScatter> = PairType::all()
        .into_iter()
        .map(|pair_type| PairTypeScatter { pair_type, points: Vec::new() })
        .collect();
    let slow_te_cutoff = 150.0;
    let mut slow_growth_histogram: Option<Histogram> = None;
    let mut sample_paths = Vec::new();

    for (idx, profile, mut paths) in collected {
        // Pair-type scatter (Fig. 8).
        if let (Some(t1), Some(te)) = (profile.optimal_duration, profile.time_to_explosion) {
            let class = classify_message(&rates, &messages[idx]);
            let panel = by_type
                .iter_mut()
                .find(|p| p.pair_type == class)
                .unwrap_or_else(|| unreachable!("all pair types present"));
            panel.points.push((t1, te));

            // Slow-explosion growth histogram (Fig. 6).
            if te >= slow_te_cutoff {
                let h = slow_growth_histogram.get_or_insert_with(|| {
                    Histogram::new(0.0, 10.0, 60)
                        .unwrap_or_else(|e| unreachable!("static bin parameters are valid: {e:?}"))
                });
                if let Some(message_hist) = profile.arrival_histogram(10.0, 600.0) {
                    for (i, (_, count)) in message_hist.series().into_iter().enumerate() {
                        h.add_weighted(i as f64 * 10.0, count);
                    }
                }
            }
        }
        sample_paths.append(&mut paths);
        summary.push(profile);
    }

    let scatter = summary.scatter_points();
    let t1_te_correlation = if scatter.len() >= 3 {
        let t1: Vec<f64> = scatter.iter().map(|p| p.0).collect();
        let te: Vec<f64> = scatter.iter().map(|p| p.1).collect();
        correlation::pearson(&t1, &te).ok()
    } else {
        None
    };

    ExplosionStudy {
        scenario: scenario.into(),
        explosion_threshold,
        summary,
        by_pair_type: by_type,
        slow_growth_histogram,
        slow_te_cutoff,
        t1_te_correlation,
        sample_paths,
        rates,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use psn_spacetime::MessageGenerator;
    use psn_trace::SyntheticDataset;

    fn small_study() -> ExplosionStudy {
        // A deliberately small configuration so the unit test stays fast:
        // the structure (not the scale) is what is under test here.
        let mut ds = SyntheticDataset::quick_config(DatasetId::Infocom06Morning);
        ds.config.mobile_nodes = 20;
        ds.config.stationary_nodes = 5;
        ds.config.window_seconds = 1800.0;
        let trace = ds.generate();
        let generator = MessageGenerator::new(psn_spacetime::MessageWorkloadConfig {
            nodes: trace.node_count(),
            generation_horizon: 1200.0,
            mean_interarrival: 4.0,
            seed: 7,
        });
        let messages = generator.uniform_messages(12);
        run_explosion_study_on(
            DatasetId::Infocom06Morning,
            &trace,
            &messages,
            EnumerationConfig::quick(40),
            40,
            2,
        )
    }

    #[test]
    fn study_produces_profiles_and_scatter() {
        let study = small_study();
        assert_eq!(study.summary.len(), 12);
        assert!(study.summary.delivery_fraction() > 0.5, "most messages should be deliverable");
        // Scatter points are split across the four pair types without loss.
        let split_total: usize = study.by_pair_type.iter().map(|p| p.points.len()).sum();
        assert_eq!(split_total, study.summary.scatter_points().len());
        assert_eq!(study.by_pair_type.len(), 4);
        assert_eq!(study.explosion_threshold, 40);
    }

    #[test]
    fn explosion_is_fast_relative_to_optimal_duration() {
        // The paper's headline: the median time-to-explosion is much smaller
        // than the median optimal path duration.
        let study = small_study();
        let t1_cdf = study.summary.optimal_duration_cdf().expect("some deliveries");
        if let Some(te_cdf) = study.summary.time_to_explosion_cdf() {
            let median_t1 = t1_cdf.quantile(0.5).unwrap();
            let median_te = te_cdf.quantile(0.5).unwrap();
            assert!(
                median_te <= median_t1 + 1e-9,
                "median TE {median_te} should not exceed median T1 {median_t1}"
            );
        }
    }

    #[test]
    fn text_statistics_are_available() {
        let study = small_study();
        let above = study.fraction_optimal_duration_above(1000.0);
        assert!(above.is_some());
        let below = study.fraction_te_below(150.0);
        // TE may be undefined if no message exploded at this tiny scale; if
        // present it must be a valid fraction.
        if let Some(f) = below {
            assert!((0.0..=1.0).contains(&f));
        }
        assert!(!study.sample_paths.is_empty());
    }
}
