//! Experiment scale profiles.
//!
//! Every experiment can run at two scales:
//!
//! * **Paper** — the scale of the original evaluation: 98-node, 3-hour
//!   synthetic datasets, k = 2000 path enumeration, one message every 4
//!   seconds for two hours, 10 simulation runs. Used by the
//!   figure-regeneration binaries (release builds).
//! * **Quick** — reduced populations, shorter windows, smaller k and fewer
//!   messages, preserving every structural property. Used by the integration
//!   tests and by Criterion benchmarks so the whole workspace stays fast to
//!   validate.

use psn_spacetime::{EnumerationConfig, MessageWorkloadConfig};
use psn_trace::{DatasetId, SyntheticDataset};

/// The scale at which an experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentProfile {
    /// Reduced scale for tests and quick benchmarks.
    Quick,
    /// The paper's scale.
    Paper,
}

impl ExperimentProfile {
    /// The synthetic dataset configuration for `id` at this scale.
    pub fn dataset(&self, id: DatasetId) -> SyntheticDataset {
        match self {
            ExperimentProfile::Quick => SyntheticDataset::quick_config(id),
            ExperimentProfile::Paper => SyntheticDataset::paper_config(id),
        }
    }

    /// Path-enumeration configuration (`k`, caps) at this scale.
    pub fn enumeration_config(&self) -> EnumerationConfig {
        match self {
            ExperimentProfile::Quick => EnumerationConfig::quick(100),
            ExperimentProfile::Paper => EnumerationConfig::paper(),
        }
    }

    /// The explosion threshold n such that `Tₙ` defines the explosion time
    /// (2000 in the paper, smaller at quick scale).
    pub fn explosion_threshold(&self) -> usize {
        match self {
            ExperimentProfile::Quick => 100,
            ExperimentProfile::Paper => 2000,
        }
    }

    /// Number of uniformly drawn messages for the path-enumeration study.
    pub fn enumeration_messages(&self) -> usize {
        match self {
            ExperimentProfile::Quick => 60,
            ExperimentProfile::Paper => 500,
        }
    }

    /// The forwarding workload over a trace with `nodes` nodes.
    pub fn workload(&self, nodes: usize) -> MessageWorkloadConfig {
        match self {
            ExperimentProfile::Quick => MessageWorkloadConfig {
                nodes,
                generation_horizon: 2400.0,
                mean_interarrival: 12.0,
                seed: 42,
            },
            ExperimentProfile::Paper => MessageWorkloadConfig::paper_default(nodes),
        }
    }

    /// Number of independent simulation runs to average over (the paper uses
    /// 10).
    pub fn simulation_runs(&self) -> usize {
        match self {
            ExperimentProfile::Quick => 2,
            ExperimentProfile::Paper => 10,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn paper_profile_matches_paper_parameters() {
        let p = ExperimentProfile::Paper;
        assert_eq!(p.explosion_threshold(), 2000);
        assert_eq!(p.enumeration_config().k, 2000);
        assert_eq!(p.simulation_runs(), 10);
        let workload = p.workload(98);
        assert_eq!(workload.mean_interarrival, 4.0);
        assert_eq!(workload.generation_horizon, 7200.0);
        let ds = p.dataset(DatasetId::Infocom06Morning);
        assert_eq!(ds.config.total_nodes(), 98);
    }

    #[test]
    fn quick_profile_is_smaller_but_structured() {
        let q = ExperimentProfile::Quick;
        assert!(q.explosion_threshold() < 2000);
        assert!(q.enumeration_config().k < 2000);
        assert!(q.enumeration_messages() < 500);
        assert!(q.simulation_runs() < 10);
        let ds = q.dataset(DatasetId::Conext06Afternoon);
        assert!(ds.config.total_nodes() < 98);
        assert!(ds.config.window_seconds < 10800.0);
    }
}
