//! First-class scenario sweeps over the study pipeline.
//!
//! A [`SweepSpec`] binds a [`psn_trace::ScenarioSweep`] — a grid over
//! scenario parameters crossed with seeds — to one registered study, a
//! view subset and numeric [`StudyParams`]. It resolves through the
//! existing `StudySpec -> StudyPlan` machinery ([`SweepSpec::plan`]): every
//! grid cell becomes one planned run with a unique label, so execution
//! inherits the pipeline's parallel per-run work queue and its
//! thread-count-independence guarantees.
//!
//! [`run_sweep`] produces a [`SweepReport`]: the per-cell typed sections
//! of the underlying study prefixed with a **sweep summary section** whose
//! table has one row per grid cell — the axis assignments, the seed, and
//! every typed scalar statistic the cell's sections report (activity cv,
//! per-algorithm success rates, explosion fractions, …). The summary is
//! plain report content, so any renderer emits it: comparative curves like
//! Fashandi et al.'s rate-allocation-over-path-count plots or Gan et al.'s
//! mobility-heterogeneity sweeps fall out of `psn-study sweep --format
//! json|csv` without re-parsing text.

use psn_artifact::ArtifactStore;
use psn_trace::sweep::PARAM_AXIS_PREFIX;
use psn_trace::{ScenarioSweep, SweepCell};

use crate::report::{Block, CellValue, Column, NumberFormat, ReportDoc, Scalar, Section, Table};
use crate::study::{
    run_study_with_policy, CellFailure, RunCache, RunPolicy, StudyError, StudyId, StudyParams,
    StudyPlan, StudyPlanError, StudyScenario, StudySpec, StudyView,
};

/// A declarative sweep invocation: the scenario grid plus the study to run
/// over every cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The study every cell runs.
    pub study: StudyId,
    /// The scenario grid.
    pub sweep: ScenarioSweep,
    /// The views to render per cell; empty means every view of the study.
    pub views: Vec<StudyView>,
    /// Numeric parameters shared by every cell.
    pub params: StudyParams,
}

/// A resolved sweep: the grid cells plus the study plan that runs them
/// (cell `i` corresponds to `plan.runs[i]`).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// The expanded grid cells, in run order.
    pub cells: Vec<SweepCell>,
    /// The axis field names, in grid order.
    pub axes: Vec<String>,
    /// The underlying study plan.
    pub plan: StudyPlan,
}

impl SweepSpec {
    /// Resolves the sweep: expands the grid, then plans the study over the
    /// cells exactly like any multi-scenario spec.
    pub fn plan(&self) -> Result<SweepPlan, StudyPlanError> {
        if self.study == StudyId::Model {
            return Err(StudyPlanError::new(
                "the model study runs no scenario and cannot be swept",
            ));
        }
        let cells = self
            .sweep
            .expand()
            .map_err(|e| StudyPlanError::new(format!("sweep {:?}: {e}", self.sweep.name)))?;
        let scenarios = cells
            .iter()
            .map(|cell| {
                Ok(StudyScenario {
                    label: cell.label.clone(),
                    config: cell.config.clone(),
                    params: apply_param_axes(&self.params, cell)?,
                })
            })
            .collect::<Result<Vec<_>, StudyPlanError>>()?;
        let plan = StudySpec::new(self.study, scenarios, self.params.clone())
            .with_views(self.views.clone())
            .plan()?;
        let axes = self.sweep.axes.iter().map(|a| a.field.clone()).collect();
        Ok(SweepPlan { cells, axes, plan })
    }
}

/// Applies a cell's `params.*` axis assignments to the sweep's shared
/// study parameters. `None` when the cell has no parameter axes (the
/// common case: every cell then shares the plan-level params value).
/// Unknown parameter names and non-integer values are plan errors, in the
/// same voice as scenario-axis schema errors.
fn apply_param_axes(
    base: &StudyParams,
    cell: &SweepCell,
) -> Result<Option<StudyParams>, StudyPlanError> {
    let mut params: Option<StudyParams> = None;
    for (field, value) in &cell.assignments {
        let Some(name) = field.strip_prefix(PARAM_AXIS_PREFIX) else { continue };
        let as_count = || -> Result<usize, StudyPlanError> {
            if value.fract() != 0.0 || *value < 1.0 || *value > u32::MAX as f64 {
                return Err(StudyPlanError::new(format!(
                    "sweep axis {field:?}: value {value} must be a positive integer"
                )));
            }
            Ok(*value as usize)
        };
        let p = params.take().unwrap_or_else(|| base.clone());
        let as_positive = || -> Result<f64, StudyPlanError> {
            if !value.is_finite() || *value <= 0.0 {
                return Err(StudyPlanError::new(format!(
                    "sweep axis {field:?}: value {value} must be a positive number"
                )));
            }
            Ok(*value)
        };
        params = Some(match name {
            "k" => p.with_k(as_count()?),
            "messages" => p.with_messages(as_count()?),
            "runs" => p.with_runs(as_count()?),
            "delta" => p.with_delta(as_positive()?),
            "interarrival" => {
                let mut p = p;
                p.workload_interarrival = as_positive()?;
                p
            }
            _ => {
                return Err(StudyPlanError::new(format!(
                    "unknown study-parameter axis {field:?} \
                     (supported: params.k, params.messages, params.runs, \
                     params.delta, params.interarrival)"
                )))
            }
        });
    }
    Ok(params)
}

/// The executed result of a sweep: one typed document whose first section
/// is the per-cell summary table, followed by every cell's study sections.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The study that ran per cell.
    pub study: StudyId,
    /// The typed report (summary section first).
    pub doc: ReportDoc,
    /// Per-cell cache provenance, in cell order. Kept outside the
    /// document so cold and warm sweeps render byte-identical reports;
    /// the CLI surfaces it as a stderr summary.
    pub cache: Vec<RunCache>,
    /// Cells that failed under [`RunPolicy::KeepGoing`] (`--keep-going`),
    /// in cell order; empty on a clean sweep. When non-empty the report's
    /// last section is the typed `failure-summary`, and the summary table
    /// shows missing stats for these cells.
    pub failures: Vec<CellFailure>,
}

impl SweepReport {
    /// How many cells were served from the artifact store (memory or
    /// disk) rather than computed.
    pub fn cells_served_from_cache(&self) -> usize {
        self.cache.iter().filter(|c| c.source.is_cached()).count()
    }
}

/// Executes a resolved sweep with a fresh, private in-memory artifact
/// store (cells still share traces/graphs/timelines within the call).
/// Infallible for the clean path; a failing cell propagates as a panic
/// carrying the typed message (use [`run_sweep_with_policy`] for typed
/// failure handling).
///
/// # Panics
///
/// Panics when a cell fails — only possible with injected faults, since
/// the private in-memory store removes every I/O failure mode.
pub fn run_sweep(sweep_plan: &SweepPlan) -> SweepReport {
    run_sweep_with(sweep_plan, &ArtifactStore::in_memory())
        .unwrap_or_else(|e| panic!("sweep execution failed: {e}"))
}

/// Executes a resolved sweep under the default fail-fast policy. See
/// [`run_sweep_with_policy`].
pub fn run_sweep_with(
    sweep_plan: &SweepPlan,
    store: &ArtifactStore,
) -> Result<SweepReport, StudyError> {
    run_sweep_with_policy(sweep_plan, store, RunPolicy::FailFast)
}

/// Executes a resolved sweep against an artifact store and assembles the
/// summary document. With a disk-backed store, cells whose result
/// fingerprint is already cached are served without running any engine —
/// an interrupted multi-thousand-cell sweep resumes from where it died.
///
/// Under [`RunPolicy::KeepGoing`] (`psn-study sweep --keep-going`) a
/// failing cell cannot abort the grid: the remaining cells finish, the
/// failed cells appear in [`SweepReport::failures`] and in the
/// `failure-summary` section at the end of the document (their summary
/// rows show missing stats), and a subsequent run over the same disk
/// cache recomputes only the failed cells — bit-identically to a sweep
/// that never failed.
pub fn run_sweep_with_policy(
    sweep_plan: &SweepPlan,
    store: &ArtifactStore,
    policy: RunPolicy,
) -> Result<SweepReport, StudyError> {
    let report = run_study_with_policy(&sweep_plan.plan, store, policy)?;
    let summary = summary_section(sweep_plan, &report.doc);

    let mut doc = ReportDoc::new(format!("{}-sweep", sweep_plan.plan.study.name()));
    doc.sections.push(summary);
    doc.sections.extend(report.doc.sections);
    Ok(SweepReport {
        study: sweep_plan.plan.study,
        doc,
        cache: report.cache,
        failures: report.failures,
    })
}

/// Builds the per-cell summary: `cell, <axes…>, seed, scenario` plus one
/// column per distinct scalar statistic reported by the cells' sections
/// (first-appearance order; cells missing a statistic get a missing
/// cell). Stats are keyed by name: if a cell reports the same name twice,
/// the first value wins — section builders qualify names (e.g.
/// `paths[Epidemic]`, `success[Fresh]`) where per-section values differ.
fn summary_section(sweep_plan: &SweepPlan, doc: &ReportDoc) -> Section {
    // Discover the stat columns.
    let mut stat_names: Vec<(String, NumberFormat, Option<String>)> = Vec::new();
    let mut per_cell_stats: Vec<Vec<(String, f64)>> = Vec::new();
    for cell in &sweep_plan.cells {
        let mut stats = Vec::new();
        for section in doc.sections_for(&cell.label) {
            for scalar in section.scalars() {
                if !stats.iter().any(|(name, _)| name == &scalar.name) {
                    stats.push((scalar.name.clone(), scalar.value));
                    if !stat_names.iter().any(|(name, _, _)| name == &scalar.name) {
                        stat_names.push((scalar.name.clone(), scalar.format, scalar.unit.clone()));
                    }
                }
            }
        }
        per_cell_stats.push(stats);
    }

    let mut columns = vec![Column::int("cell")];
    for axis in &sweep_plan.axes {
        columns.push(Column::display(axis.clone()));
    }
    columns.push(Column::int("seed"));
    columns.push(Column::text("scenario"));
    for (name, format, unit) in &stat_names {
        columns.push(Column { name: name.clone(), unit: unit.clone(), format: *format });
    }

    let mut table = Table::new("sweep_cells", columns);
    for (index, cell) in sweep_plan.cells.iter().enumerate() {
        let mut row = vec![CellValue::Int(index as u64)];
        for axis in &sweep_plan.axes {
            let value = cell
                .assignments
                .iter()
                .find(|(field, _)| field == axis)
                .map(|(_, value)| *value)
                .unwrap_or_else(|| unreachable!("every cell assigns every axis"));
            row.push(CellValue::Float(value));
        }
        row.push(CellValue::Int(cell.seed.unwrap_or_else(|| cell.config.seed())));
        row.push(CellValue::Text(cell.label.clone()));
        let stats = &per_cell_stats[index];
        for (name, _, _) in &stat_names {
            let value = stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
            row.push(CellValue::opt_float(value));
        }
        table.push_row(row);
    }

    let mut section = Section::new()
        .stat(Scalar::display("cells", sweep_plan.cells.len() as f64))
        .block(Block::Title(format!(
            "Sweep summary — {} over {} cells ({} axes: {})",
            sweep_plan.plan.study,
            sweep_plan.cells.len(),
            sweep_plan.axes.len(),
            if sweep_plan.axes.is_empty() {
                "none".to_string()
            } else {
                sweep_plan.axes.join(", ")
            }
        )))
        .block(Block::Table(table));
    section.view = "sweep-summary".to_string();
    section
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::config::ExperimentProfile;
    use crate::report::{CsvRenderer, JsonRenderer, Renderer, TextRenderer};
    use psn_spacetime::EnumerationConfig;
    use psn_trace::generator::config::CommunityConfig;
    use psn_trace::{ScenarioConfig, SweepAxis};

    fn tiny_params() -> StudyParams {
        let mut p = StudyParams::for_profile(ExperimentProfile::Quick);
        p.enumeration = EnumerationConfig::quick(20);
        p.explosion_threshold = 20;
        p.enumeration_messages = 4;
        p.simulation_runs = 1;
        p.workload_horizon = Some(400.0);
        p.workload_interarrival = 40.0;
        p.paths_taken_messages = 1;
        p.model_replications = 3;
        p.threads = 2;
        p
    }

    fn base() -> ScenarioConfig {
        ScenarioConfig::Community(CommunityConfig {
            name: "sweep-base".into(),
            communities: 2,
            nodes_per_community: 6,
            window_seconds: 2400.0,
            max_node_rate: 0.2,
            intra_inter_ratio: 4.0,
            mean_contact_duration: 60.0,
            contact_duration_cv: 0.5,
            seed: 5,
        })
    }

    fn grid_spec(study: StudyId, views: Vec<StudyView>) -> SweepSpec {
        SweepSpec {
            study,
            sweep: ScenarioSweep {
                name: "grid".into(),
                study: None,
                base: base(),
                axes: vec![
                    SweepAxis { field: "intra_inter_ratio".into(), values: vec![2.0, 8.0] },
                    SweepAxis { field: "nodes_per_community".into(), values: vec![4.0, 8.0] },
                ],
                seeds: vec![],
            },
            views,
            params: tiny_params(),
        }
    }

    #[test]
    fn sweeps_resolve_through_the_study_plan_machinery() {
        let spec = grid_spec(StudyId::Activity, vec![StudyView::ActivityTimeseries]);
        let plan = spec.plan().unwrap();
        assert_eq!(plan.cells.len(), 4);
        assert_eq!(plan.plan.runs.len(), 4);
        for (cell, run) in plan.cells.iter().zip(&plan.plan.runs) {
            assert_eq!(cell.label, run.label);
            assert_eq!(cell.config, run.config);
        }
        assert_eq!(plan.axes, vec!["intra_inter_ratio", "nodes_per_community"]);
    }

    #[test]
    fn model_and_invalid_axes_are_rejected() {
        let spec = grid_spec(StudyId::Model, vec![]);
        assert!(spec.plan().unwrap_err().to_string().contains("cannot be swept"));

        let mut spec = grid_spec(StudyId::Activity, vec![]);
        spec.sweep.axes[0].field = "bogus".into();
        let err = spec.plan().unwrap_err();
        assert!(err.to_string().contains("bogus"), "{err}");
    }

    #[test]
    fn summary_covers_every_grid_cell_with_typed_stats() {
        let spec = grid_spec(StudyId::Activity, vec![StudyView::ActivityTimeseries]);
        let plan = spec.plan().unwrap();
        let report = run_sweep(&plan);

        // Summary first, then one tagged section per cell.
        assert_eq!(report.doc.sections.len(), 1 + 4);
        let summary = &report.doc.sections[0];
        assert_eq!(summary.view, "sweep-summary");
        let Some(Block::Table(table)) = summary.blocks.get(1) else {
            panic!("summary table expected, got {:?}", summary.blocks.get(1));
        };
        assert_eq!(table.rows.len(), 4, "one row per grid cell");
        let names: Vec<&str> = table.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            &names[..5],
            &["cell", "intra_inter_ratio", "nodes_per_community", "seed", "scenario"]
        );
        assert!(names.contains(&"cv"), "{names:?}");
        assert!(names.contains(&"tail_ratio"), "{names:?}");

        // Every cell label appears in both the summary rows and the body.
        for cell in &plan.cells {
            assert!(
                table.rows.iter().any(|row| row.contains(&CellValue::Text(cell.label.clone()))),
                "summary row for {:?}",
                cell.label
            );
            assert!(!report.doc.sections_for(&cell.label).is_empty(), "{:?}", cell.label);
        }

        // The document renders through every backend; JSON round-trips.
        let text = TextRenderer.render_text(&report.doc);
        assert!(text.contains("Sweep summary — activity over 4 cells"), "{text}");
        let json = JsonRenderer.render_json(&report.doc);
        let parsed = JsonRenderer.parse(&json).expect("sweep json parses");
        assert_eq!(parsed, report.doc);
        assert!(!CsvRenderer.render(&report.doc).is_empty());
    }

    #[test]
    fn param_axes_flow_into_study_params() {
        let mut spec = grid_spec(StudyId::Explosion, vec![StudyView::ExplosionCdfs]);
        spec.sweep.axes = vec![
            SweepAxis { field: "intra_inter_ratio".into(), values: vec![2.0, 8.0] },
            SweepAxis { field: "params.k".into(), values: vec![5.0, 20.0] },
        ];
        let plan = spec.plan().unwrap();
        assert_eq!(plan.plan.runs.len(), 4);
        assert_eq!(plan.axes, vec!["intra_inter_ratio", "params.k"]);
        for (cell, run) in plan.cells.iter().zip(&plan.plan.runs) {
            let k = cell.assignments[1].1 as usize;
            let params = run.params.as_ref().expect("params axis sets per-run overrides");
            assert_eq!(params.enumeration.k, k, "{}", run.label);
            assert!(run.label.contains("params.k="), "{}", run.label);
            // The scenario itself is untouched by the params axis.
            let ScenarioConfig::Community(c) = &run.config else { panic!("family preserved") };
            assert_eq!(c.intra_inter_ratio, cell.assignments[0].1);
        }
        // Cells 0/1 share a scenario fingerprint (only k differs).
        assert_eq!(plan.cells[0].config.fingerprint(), plan.cells[1].config.fingerprint());

        // messages and runs axes map to their params too.
        let mut spec = grid_spec(StudyId::Forwarding, vec![StudyView::DelayVsSuccess]);
        spec.sweep.axes = vec![SweepAxis { field: "params.runs".into(), values: vec![1.0, 2.0] }];
        let plan = spec.plan().unwrap();
        assert_eq!(plan.plan.runs[1].params.as_ref().unwrap().simulation_runs, 2);
        let mut spec = grid_spec(StudyId::Explosion, vec![StudyView::ExplosionCdfs]);
        spec.sweep.axes =
            vec![SweepAxis { field: "params.messages".into(), values: vec![2.0, 3.0] }];
        let plan = spec.plan().unwrap();
        assert_eq!(plan.plan.runs[1].params.as_ref().unwrap().enumeration_messages, 3);

        // Unknown parameter names and non-integer values are plan errors.
        let mut spec = grid_spec(StudyId::Activity, vec![StudyView::ActivityTimeseries]);
        spec.sweep.axes = vec![SweepAxis { field: "params.bogus".into(), values: vec![1.0] }];
        let err = spec.plan().unwrap_err();
        assert!(err.to_string().contains("params.bogus"), "{err}");
        assert!(err.to_string().contains("params.k"), "error lists the supported axes: {err}");
        let mut spec = grid_spec(StudyId::Activity, vec![StudyView::ActivityTimeseries]);
        spec.sweep.axes = vec![SweepAxis { field: "params.k".into(), values: vec![2.5] }];
        let err = spec.plan().unwrap_err();
        assert!(err.to_string().contains("positive integer"), "{err}");
    }

    #[test]
    fn cells_sharing_a_scenario_build_each_artifact_exactly_once() {
        // Four cells varying only params.runs over one scenario: the trace,
        // graph and timeline must each be built once for the whole sweep —
        // including under the parallel per-run work queue.
        let mut spec = grid_spec(StudyId::Forwarding, vec![StudyView::DelayVsSuccess]);
        spec.sweep.axes =
            vec![SweepAxis { field: "params.runs".into(), values: vec![1.0, 2.0, 3.0, 4.0] }];
        spec.params.threads = 4;
        let plan = spec.plan().unwrap();
        let store = crate::study::ArtifactStore::in_memory();
        let report = run_sweep_with(&plan, &store).unwrap();
        assert_eq!(report.cache.len(), 4);
        assert_eq!(report.cells_served_from_cache(), 0, "distinct results per runs value");

        let stats = store.stats();
        use psn_artifact::ArtifactKind;
        assert_eq!(stats.builds_of(ArtifactKind::Trace), 1, "{stats:?}");
        assert_eq!(stats.builds_of(ArtifactKind::Graph), 1, "{stats:?}");
        assert_eq!(stats.builds_of(ArtifactKind::Timeline), 1, "{stats:?}");
        assert_eq!(stats.builds_of(ArtifactKind::Result), 4, "{stats:?}");

        // The summary exposes the params axis as a column and the per-cell
        // success stats differ across runs counts only through averaging.
        let Some(Block::Table(table)) = report.doc.sections[0].blocks.get(1) else {
            panic!("summary table expected");
        };
        let names: Vec<&str> = table.columns.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"params.runs"), "{names:?}");
    }

    #[test]
    fn interrupted_sweeps_resume_from_a_partial_disk_cache() {
        use crate::study::{ArtifactStore, CacheSource};
        let dir =
            std::env::temp_dir().join(format!("psn-sweep-resume-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let spec = grid_spec(StudyId::Activity, vec![StudyView::ActivityTimeseries]);
        let plan = spec.plan().unwrap();
        let cold = run_sweep_with(&plan, &ArtifactStore::with_disk(&dir).unwrap()).unwrap();
        assert_eq!(cold.cells_served_from_cache(), 0);

        // Simulate an interruption: delete one cell's persisted result
        // (payload + sidecar), leaving a partially-populated cache.
        let results = dir.join("results");
        let mut stems: Vec<std::path::PathBuf> = std::fs::read_dir(&results)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        stems.sort();
        assert_eq!(stems.len(), 4, "one persisted result per cell");
        std::fs::remove_file(&stems[0]).unwrap();
        std::fs::remove_file(stems[0].with_extension("meta")).unwrap();

        // A fresh store over the same directory — a restarted process —
        // completes the sweep: three cells from disk, one recomputed, and
        // the report is bit-identical to the uninterrupted run.
        let resumed = run_sweep_with(&plan, &ArtifactStore::with_disk(&dir).unwrap()).unwrap();
        assert_eq!(resumed.cells_served_from_cache(), 3, "{:?}", resumed.cache);
        assert_eq!(
            resumed.cache.iter().filter(|c| c.source == CacheSource::Built).count(),
            1,
            "{:?}",
            resumed.cache
        );
        assert_eq!(cold.doc, resumed.doc);

        // A third run is fully cache-served.
        let warm = run_sweep_with(&plan, &ArtifactStore::with_disk(&dir).unwrap()).unwrap();
        assert_eq!(warm.cells_served_from_cache(), 4);
        assert!(warm.cache.iter().all(|c| c.source == CacheSource::Disk));
        assert_eq!(cold.doc, warm.doc);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn forwarding_sweeps_expose_per_algorithm_success_columns() {
        let mut spec = grid_spec(StudyId::Forwarding, vec![StudyView::DelayVsSuccess]);
        spec.sweep.axes.truncate(1); // 2 cells keep the test quick
        let report = run_sweep(&spec.plan().unwrap());
        let Some(Block::Table(table)) = report.doc.sections[0].blocks.get(1) else {
            panic!("summary table expected");
        };
        let names: Vec<&str> = table.columns.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"success[Epidemic]"), "{names:?}");
        assert!(names.contains(&"success-rate spread across non-epidemic algorithms"), "{names:?}");
        assert_eq!(table.rows.len(), 2);
    }
}
