//! Named figure presets: the fifteen pre-refactor `fig*` binaries (plus the
//! §5.1 model-validation table) expressed as study-pipeline invocations.
//!
//! Each preset resolves to a [`StudySpec`] — which paper datasets, which
//! views, which profile-derived parameters — and renders the **exact byte
//! stream** the corresponding binary printed (header included). The golden
//! tests in `psn-bench` pin every preset's quick-profile output to captures
//! taken from the binaries before the refactor, so `psn-study run --preset
//! fig09` is a drop-in replacement for the old `fig09_delay_success`.
//!
//! Figure 2 is the one preset that bypasses the pipeline: it prints a
//! hardcoded three-node example space-time graph rather than running a
//! study over a generated scenario.

use std::fmt::Write as _;

use psn_trace::DatasetId;

use super::{run_study, StudyId, StudyParams, StudyScenario, StudySpec, StudyView};
use crate::config::ExperimentProfile;

/// Renders the two-line self-describing header every figure output starts
/// with (formerly `psn_bench::print_header`).
pub fn render_header(figure: &str, profile: ExperimentProfile) -> String {
    let profile_line = match profile {
        ExperimentProfile::Paper => "paper (98 nodes, 3-hour traces)",
        ExperimentProfile::Quick => "quick (reduced scale; set PSN_PROFILE=paper for full scale)",
    };
    format!("# PSN path-diversity reproduction — {figure}\n# profile: {profile_line}\n")
}

/// The registry of figure presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PresetId {
    /// Fig. 1 — contact time series for all four datasets.
    Fig01,
    /// Fig. 2 — the three-node example space-time graph.
    Fig02,
    /// Fig. 4 — optimal-duration / time-to-explosion CDFs.
    Fig04,
    /// Fig. 5 — `(T₁, TE)` scatter.
    Fig05,
    /// Fig. 6 — path-arrival growth for slow explosions.
    Fig06,
    /// Fig. 7 — per-node contact-count CDFs.
    Fig07,
    /// Fig. 8 — pair-type scatter panels.
    Fig08,
    /// Fig. 9 — delay vs success rate for all four datasets.
    Fig09,
    /// Fig. 10 — delay distributions.
    Fig10,
    /// Fig. 11 — cumulative reception times.
    Fig11,
    /// Fig. 12 — paths taken by forwarding algorithms.
    Fig12,
    /// Fig. 13 — performance by pair type.
    Fig13,
    /// Fig. 14 — mean contact rate per hop (near-optimal + taken paths).
    Fig14,
    /// Fig. 15 — rate-ratio box plots.
    Fig15,
    /// §5.1 — analytic model validation.
    Model,
}

impl PresetId {
    /// Every preset, in figure order.
    pub fn all() -> [PresetId; 15] {
        [
            PresetId::Fig01,
            PresetId::Fig02,
            PresetId::Fig04,
            PresetId::Fig05,
            PresetId::Fig06,
            PresetId::Fig07,
            PresetId::Fig08,
            PresetId::Fig09,
            PresetId::Fig10,
            PresetId::Fig11,
            PresetId::Fig12,
            PresetId::Fig13,
            PresetId::Fig14,
            PresetId::Fig15,
            PresetId::Model,
        ]
    }

    /// The short CLI name (`fig01` … `fig15`, `model`).
    pub fn name(&self) -> &'static str {
        match self {
            PresetId::Fig01 => "fig01",
            PresetId::Fig02 => "fig02",
            PresetId::Fig04 => "fig04",
            PresetId::Fig05 => "fig05",
            PresetId::Fig06 => "fig06",
            PresetId::Fig07 => "fig07",
            PresetId::Fig08 => "fig08",
            PresetId::Fig09 => "fig09",
            PresetId::Fig10 => "fig10",
            PresetId::Fig11 => "fig11",
            PresetId::Fig12 => "fig12",
            PresetId::Fig13 => "fig13",
            PresetId::Fig14 => "fig14",
            PresetId::Fig15 => "fig15",
            PresetId::Model => "model",
        }
    }

    /// The name of the pre-refactor binary this preset replaces (still
    /// accepted as a CLI alias, and used by the forwarding shims).
    pub fn binary_name(&self) -> &'static str {
        match self {
            PresetId::Fig01 => "fig01_contact_timeseries",
            PresetId::Fig02 => "fig02_spacetime_example",
            PresetId::Fig04 => "fig04_cdfs",
            PresetId::Fig05 => "fig05_scatter",
            PresetId::Fig06 => "fig06_growth",
            PresetId::Fig07 => "fig07_contact_cdf",
            PresetId::Fig08 => "fig08_pairtype_scatter",
            PresetId::Fig09 => "fig09_delay_success",
            PresetId::Fig10 => "fig10_delay_distributions",
            PresetId::Fig11 => "fig11_reception_times",
            PresetId::Fig12 => "fig12_paths_taken",
            PresetId::Fig13 => "fig13_pairtype_performance",
            PresetId::Fig14 => "fig14_hop_rates",
            PresetId::Fig15 => "fig15_rate_ratios",
            PresetId::Model => "model_validation",
        }
    }

    /// Looks a preset up by CLI name or binary alias.
    pub fn parse(name: &str) -> Option<PresetId> {
        PresetId::all().into_iter().find(|p| p.name() == name || p.binary_name() == name)
    }

    /// The figure title printed in the output header — identical to the
    /// string the pre-refactor binary passed to `print_header`.
    pub fn figure_title(&self) -> &'static str {
        match self {
            PresetId::Fig01 => "Figure 1 — contact time series",
            PresetId::Fig02 => "Figure 2 — example space-time graph",
            PresetId::Fig04 => "Figure 4 — optimal duration and time-to-explosion CDFs",
            PresetId::Fig05 => "Figure 5 — T1 vs TE scatter",
            PresetId::Fig06 => "Figure 6 — path-arrival growth for slow explosions",
            PresetId::Fig07 => "Figure 7 — per-node contact-count CDFs",
            PresetId::Fig08 => "Figure 8 — pair-type scatter",
            PresetId::Fig09 => "Figure 9 — average delay vs success rate",
            PresetId::Fig10 => "Figure 10 — delay distributions",
            PresetId::Fig11 => "Figure 11 — cumulative message receptions",
            PresetId::Fig12 => "Figure 12 — paths taken by forwarding algorithms",
            PresetId::Fig13 => "Figure 13 — performance by pair type",
            PresetId::Fig14 => "Figure 14 — mean contact rate per hop",
            PresetId::Fig15 => "Figure 15 — rate ratios between consecutive hops",
            PresetId::Model => "Section 5.1 — analytic model validation",
        }
    }

    /// The study this preset runs (`None` for the pipeline-bypassing
    /// Fig. 2 example).
    pub fn study(&self) -> Option<StudyId> {
        match self {
            PresetId::Fig01 | PresetId::Fig07 => Some(StudyId::Activity),
            PresetId::Fig02 => None,
            PresetId::Fig04 | PresetId::Fig05 | PresetId::Fig06 | PresetId::Fig08 => {
                Some(StudyId::Explosion)
            }
            PresetId::Fig09 | PresetId::Fig10 | PresetId::Fig11 | PresetId::Fig13 => {
                Some(StudyId::Forwarding)
            }
            PresetId::Fig12 => Some(StudyId::PathsTaken),
            PresetId::Fig14 | PresetId::Fig15 => Some(StudyId::HopRates),
            PresetId::Model => Some(StudyId::Model),
        }
    }

    /// The datasets the preset sweeps, in output order.
    fn datasets(&self) -> Vec<DatasetId> {
        match self {
            PresetId::Fig01 | PresetId::Fig07 | PresetId::Fig09 => DatasetId::all().to_vec(),
            PresetId::Fig04 => vec![DatasetId::Infocom06Morning, DatasetId::Infocom06Afternoon],
            PresetId::Fig10 => vec![DatasetId::Infocom06Morning, DatasetId::Conext06Morning],
            PresetId::Fig02 | PresetId::Model => Vec::new(),
            _ => vec![DatasetId::Infocom06Morning],
        }
    }

    /// The views the preset renders per dataset.
    fn views(&self) -> Vec<StudyView> {
        match self {
            PresetId::Fig01 => vec![StudyView::ActivityTimeseries],
            PresetId::Fig02 => Vec::new(),
            PresetId::Fig04 => vec![StudyView::ExplosionCdfs],
            PresetId::Fig05 => vec![StudyView::ExplosionScatter],
            PresetId::Fig06 => vec![StudyView::ExplosionGrowth],
            PresetId::Fig07 => vec![StudyView::ContactCountCdf],
            PresetId::Fig08 => vec![StudyView::ExplosionPairTypes],
            PresetId::Fig09 => vec![StudyView::DelayVsSuccess],
            PresetId::Fig10 => vec![StudyView::DelayDistributions],
            PresetId::Fig11 => vec![StudyView::ReceptionTimes],
            PresetId::Fig12 => vec![StudyView::PathsTaken],
            PresetId::Fig13 => vec![StudyView::PairTypePerformance],
            PresetId::Fig14 => vec![StudyView::HopRateProgression, StudyView::HopRatesTaken],
            PresetId::Fig15 => vec![StudyView::RateRatios],
            PresetId::Model => vec![StudyView::ModelValidation],
        }
    }

    /// Builds the study spec this preset runs at `profile` scale with
    /// `threads` workers. `None` for Fig. 2.
    pub fn spec(&self, profile: ExperimentProfile, threads: usize) -> Option<StudySpec> {
        let study = self.study()?;
        let scenarios =
            self.datasets().into_iter().map(|id| StudyScenario::dataset(id, profile)).collect();
        let params = StudyParams::for_profile(profile).with_threads(threads);
        Some(StudySpec::new(study, scenarios, params).with_views(self.views()))
    }

    /// Renders the preset's complete output (header + body) — byte-for-byte
    /// what the pre-refactor binary printed at the same profile.
    pub fn render(&self, profile: ExperimentProfile, threads: usize) -> String {
        let mut out = render_header(self.figure_title(), profile);
        match self.spec(profile, threads) {
            Some(spec) => {
                let plan = spec.plan().unwrap_or_else(|e| {
                    unreachable!("preset specs are valid by construction: {e:?}")
                });
                out.push_str(&run_study(&plan).render());
            }
            None => out.push_str(&spacetime_example_body()),
        }
        out
    }
}

impl std::fmt::Display for PresetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The Fig. 2 body: the paper's three-node example space-time graph,
/// printed as per-slot adjacency (ported verbatim from the old
/// `fig02_spacetime_example` binary).
fn spacetime_example_body() -> String {
    use psn_spacetime::{epidemic_delivery_time, Message, SpaceTimeGraph};
    use psn_trace::contact::Contact;
    use psn_trace::node::{NodeClass, NodeRegistry};
    use psn_trace::trace::TimeWindow;
    use psn_trace::{ContactTrace, NodeId};

    // The paper's example: nodes 1 and 2 in contact during the first slot,
    // all three nodes in contact during the second slot (Δ = 10 s).
    let mut registry = NodeRegistry::new();
    for _ in 0..3 {
        registry.add(NodeClass::Mobile);
    }
    let contacts = vec![
        Contact::new(NodeId(0), NodeId(1), 0.0, 5.0)
            .unwrap_or_else(|e| unreachable!("valid by construction: {e:?}")),
        Contact::new(NodeId(0), NodeId(1), 11.0, 19.0)
            .unwrap_or_else(|e| unreachable!("valid by construction: {e:?}")),
        Contact::new(NodeId(0), NodeId(2), 12.0, 18.0)
            .unwrap_or_else(|e| unreachable!("valid by construction: {e:?}")),
        Contact::new(NodeId(1), NodeId(2), 13.0, 17.0)
            .unwrap_or_else(|e| unreachable!("valid by construction: {e:?}")),
    ];
    let trace = ContactTrace::from_contacts(
        "figure2-example",
        registry,
        TimeWindow::new(0.0, 20.0),
        contacts,
    )
    .unwrap_or_else(|e| unreachable!("valid by construction: {e:?}"));
    let graph = SpaceTimeGraph::build_default(&trace);

    let mut out = String::new();
    let _ = writeln!(out, "delta = {} s, slots = {}", graph.delta(), graph.slot_count());
    for slot in 0..graph.slot_count() {
        let _ = writeln!(out, "slot {slot} (ends at t = {:.0} s):", graph.slot_end_time(slot));
        for node in 0..graph.node_count() as u32 {
            let neighbors: Vec<String> =
                graph.neighbors(slot, NodeId(node)).iter().map(|n| n.to_string()).collect();
            let _ = writeln!(
                out,
                "  n{node}: zero-weight edges to [{}], wait edge to (n{node}, slot {})",
                neighbors.join(", "),
                slot + 1
            );
        }
    }

    // And the resulting optimal path of the paper's narrative: a message
    // from node 1 (our n0) to node 3 (our n2) created at t = 0 crosses in
    // the second slot.
    let message = Message::new(NodeId(0), NodeId(2), 0.0);
    let _ = writeln!(
        out,
        "\noptimal delivery time for {}: {:?} s",
        message,
        epidemic_delivery_time(&graph, &message)
    );
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn preset_registry_is_consistent() {
        for preset in PresetId::all() {
            assert_eq!(PresetId::parse(preset.name()), Some(preset));
            assert_eq!(PresetId::parse(preset.binary_name()), Some(preset));
            assert!(!preset.figure_title().is_empty());
            match preset.study() {
                Some(study) => {
                    for view in preset.views() {
                        assert_eq!(view.study(), study, "{preset}: view/study mismatch");
                    }
                    let spec = preset.spec(ExperimentProfile::Quick, 1).unwrap();
                    assert!(spec.plan().is_ok(), "{preset}: plan must resolve");
                }
                None => assert_eq!(preset, PresetId::Fig02),
            }
        }
        assert_eq!(PresetId::parse("fig03"), None);
    }

    #[test]
    fn dataset_sweeps_match_the_old_binaries() {
        assert_eq!(PresetId::Fig01.datasets().len(), 4);
        assert_eq!(PresetId::Fig09.datasets().len(), 4);
        assert_eq!(PresetId::Fig04.datasets().len(), 2);
        assert_eq!(PresetId::Fig10.datasets().len(), 2);
        assert_eq!(PresetId::Fig05.datasets(), vec![DatasetId::Infocom06Morning]);
        assert!(PresetId::Model.datasets().is_empty());
    }

    #[test]
    fn fig02_renders_the_example_graph() {
        let out = PresetId::Fig02.render(ExperimentProfile::Quick, 1);
        assert!(out.starts_with("# PSN path-diversity reproduction — Figure 2"));
        assert!(out.contains("delta = 10 s, slots = 2"), "{out}");
        assert!(out.contains("optimal delivery time for n0->n2 @0s: Some(20.0) s"), "{out}");
    }

    #[test]
    fn header_names_the_profile() {
        let quick =
            render_header("Figure 9 — average delay vs success rate", ExperimentProfile::Quick);
        assert!(quick.contains("# profile: quick"));
        let paper = render_header("x", ExperimentProfile::Paper);
        assert!(paper.contains("# profile: paper (98 nodes, 3-hour traces)"));
    }
}
