//! The declarative study pipeline: `StudySpec` → `StudyPlan` → `StudyReport`.
//!
//! The original experiment layer was fifteen hand-rolled `fig*` binaries,
//! each hardwired to [`psn_trace::SyntheticDataset`]. This module replaces
//! that with a three-stage pipeline any scenario can flow through:
//!
//! 1. **[`StudySpec`]** — what to run: one named study from the registry
//!    ([`StudyId`]), a list of scenarios (any
//!    [`psn_trace::ScenarioConfig`] family — the paper's conference
//!    stand-ins, community-structured mobility, 1000+-node scaled
//!    populations, …), optional seed replications, the views to render and
//!    the numeric parameters ([`StudyParams`], usually derived from an
//!    [`ExperimentProfile`]).
//! 2. **[`StudyPlan`]** — the spec resolved into concrete runs: seeds
//!    expanded, views validated against the study, scenario labels made
//!    unique. Planning is cheap and infallible once constructed, so a plan
//!    can be inspected (`psn-study plan` style tooling) before paying for
//!    generation and simulation.
//! 3. **[`StudyReport`]** — the executed result: a **typed**
//!    [`ReportDoc`] of schema'd tables, series and scalars (one tagged
//!    [`Section`] per run × view), renderable through any backend in
//!    [`crate::report::render`]. [`StudyReport::render`] uses the text
//!    backend and reproduces exactly the plain-text/CSV stream the old
//!    binaries printed; the figure presets in [`preset`] are
//!    golden-file-tested against the pre-refactor binaries' byte-for-byte
//!    output.
//!
//! Scenario sweeps — grids over scenario parameters crossed with seeds —
//! are first-class specs in [`sweep`], resolving through the same
//! `StudySpec -> StudyPlan` machinery.
//!
//! Execution is parallel at every level: the per-run loop shards
//! (scenario × seed) cells over an `AtomicUsize` work queue, and inside a
//! run path enumeration fans message enumeration out over its worker pool
//! while the forwarding simulator shards (algorithm × run × message-chunk)
//! jobs. Worker counts never change results (pinned by differential
//! property tests in `psn-spacetime` / `psn-forwarding`). The trace for
//! each planned run is generated **once** and shared by every view that
//! needs it.

pub mod preset;
pub mod sweep;

pub use psn_artifact::{ArtifactError, ArtifactStore, CacheSource, StoreStats};

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use psn_artifact::{ArtifactKey, ArtifactKind, BuiltArtifact};
use psn_spacetime::{EnumerationConfig, MessageGenerator, MessageWorkloadConfig};
use psn_trace::{ContactStream, FingerprintHasher, ScenarioConfig, Seconds};

use crate::config::ExperimentProfile;
use crate::experiments::activity::{activity_report, activity_report_streamed, ActivityReport};
use crate::experiments::explosion::{
    run_explosion_study_on_graph, run_explosion_study_streamed, ExplosionStudy,
};
use crate::experiments::forwarding::{
    run_forwarding_study_shared, run_forwarding_study_streamed, ForwardingStudy,
};
use crate::experiments::hop_rates::{
    run_hop_rate_study, run_hop_rate_study_on_outcomes, HopRateStudy,
};
use crate::experiments::model::run_model_validation;
use crate::experiments::paths_taken::{run_paths_taken_shared, run_paths_taken_streamed};
use crate::report::{
    Artifact, Block, CellValue, Column, JsonRenderer, Renderer, ReportDoc, RunMeta, Scalar,
    Section, Table, TextRenderer,
};

/// The registry of named studies — one per experiment family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StudyId {
    /// Contact activity over time and per-node contact-count CDFs
    /// (Figs. 1 and 7).
    Activity,
    /// Path enumeration and the path-explosion profile (Figs. 4, 5, 6, 8).
    Explosion,
    /// The six forwarding algorithms over a message workload
    /// (Figs. 9, 10, 11, 13).
    Forwarding,
    /// Per-message path-arrival bursts vs the paths algorithms actually
    /// took (Fig. 12).
    PathsTaken,
    /// Per-hop contact-rate progression of near-optimal and taken paths
    /// (Figs. 14, 15).
    HopRates,
    /// Analytic-model validation (§5.1/§5.2); runs no scenario.
    Model,
}

impl StudyId {
    /// Every registered study.
    pub fn all() -> [StudyId; 6] {
        [
            StudyId::Activity,
            StudyId::Explosion,
            StudyId::Forwarding,
            StudyId::PathsTaken,
            StudyId::HopRates,
            StudyId::Model,
        ]
    }

    /// The CLI name of the study.
    pub fn name(&self) -> &'static str {
        match self {
            StudyId::Activity => "activity",
            StudyId::Explosion => "explosion",
            StudyId::Forwarding => "forwarding",
            StudyId::PathsTaken => "paths-taken",
            StudyId::HopRates => "hop-rates",
            StudyId::Model => "model",
        }
    }

    /// Parses a CLI study name.
    pub fn parse(name: &str) -> Option<StudyId> {
        StudyId::all().into_iter().find(|s| s.name() == name)
    }

    /// One-line description for `psn-study list`.
    pub fn description(&self) -> &'static str {
        match self {
            StudyId::Activity => "contact time series and per-node contact-count CDFs (Figs. 1, 7)",
            StudyId::Explosion => "path enumeration and explosion profiles (Figs. 4, 5, 6, 8)",
            StudyId::Forwarding => {
                "six forwarding algorithms over a workload (Figs. 9, 10, 11, 13)"
            }
            StudyId::PathsTaken => "path-arrival bursts vs paths algorithms took (Fig. 12)",
            StudyId::HopRates => "per-hop contact-rate progression (Figs. 14, 15)",
            StudyId::Model => "analytic model validation, no scenario needed (§5.1/§5.2)",
        }
    }

    /// The views this study can render, in default rendering order.
    pub fn views(&self) -> Vec<StudyView> {
        match self {
            StudyId::Activity => vec![StudyView::ActivityTimeseries, StudyView::ContactCountCdf],
            StudyId::Explosion => vec![
                StudyView::ExplosionCdfs,
                StudyView::ExplosionScatter,
                StudyView::ExplosionGrowth,
                StudyView::ExplosionPairTypes,
            ],
            StudyId::Forwarding => vec![
                StudyView::DelayVsSuccess,
                StudyView::DelayDistributions,
                StudyView::ReceptionTimes,
                StudyView::PairTypePerformance,
            ],
            StudyId::PathsTaken => vec![StudyView::PathsTaken],
            StudyId::HopRates => {
                vec![StudyView::HopRateProgression, StudyView::HopRatesTaken, StudyView::RateRatios]
            }
            StudyId::Model => vec![StudyView::ModelValidation],
        }
    }
}

impl std::fmt::Display for StudyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One renderable output series of a study (roughly, one figure panel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StudyView {
    /// Fig. 1: contacts per minute.
    ActivityTimeseries,
    /// Fig. 7: per-node contact-count CDF.
    ContactCountCdf,
    /// Fig. 4: optimal-duration and time-to-explosion CDFs.
    ExplosionCdfs,
    /// Fig. 5: `(T₁, TE)` scatter.
    ExplosionScatter,
    /// Fig. 6: path-arrival growth for slow explosions.
    ExplosionGrowth,
    /// Fig. 8: scatter split by pair type.
    ExplosionPairTypes,
    /// Fig. 9: success rate vs average delay per algorithm.
    DelayVsSuccess,
    /// Fig. 10: full delay distributions per algorithm.
    DelayDistributions,
    /// Fig. 11: cumulative receptions over time.
    ReceptionTimes,
    /// Fig. 13: performance by source/destination pair type.
    PairTypePerformance,
    /// Fig. 12: arrival bursts and each algorithm's chosen-path arrival.
    PathsTaken,
    /// Fig. 14: mean contact rate per hop of near-optimal paths.
    HopRateProgression,
    /// Fig. 14 (lower half): the same analysis over paths each algorithm
    /// actually took.
    HopRatesTaken,
    /// Fig. 15: rate-ratio box plots between consecutive hops.
    RateRatios,
    /// §5.1/§5.2 analytic-model agreement table.
    ModelValidation,
}

impl StudyView {
    /// Every view, in study/default order.
    pub fn all() -> [StudyView; 15] {
        [
            StudyView::ActivityTimeseries,
            StudyView::ContactCountCdf,
            StudyView::ExplosionCdfs,
            StudyView::ExplosionScatter,
            StudyView::ExplosionGrowth,
            StudyView::ExplosionPairTypes,
            StudyView::DelayVsSuccess,
            StudyView::DelayDistributions,
            StudyView::ReceptionTimes,
            StudyView::PairTypePerformance,
            StudyView::PathsTaken,
            StudyView::HopRateProgression,
            StudyView::HopRatesTaken,
            StudyView::RateRatios,
            StudyView::ModelValidation,
        ]
    }

    /// The CLI slug of the view (used by `--views` and as the section tag
    /// in typed reports).
    pub fn name(&self) -> &'static str {
        match self {
            StudyView::ActivityTimeseries => "activity-timeseries",
            StudyView::ContactCountCdf => "contact-count-cdf",
            StudyView::ExplosionCdfs => "explosion-cdfs",
            StudyView::ExplosionScatter => "explosion-scatter",
            StudyView::ExplosionGrowth => "explosion-growth",
            StudyView::ExplosionPairTypes => "explosion-pair-types",
            StudyView::DelayVsSuccess => "delay-vs-success",
            StudyView::DelayDistributions => "delay-distributions",
            StudyView::ReceptionTimes => "reception-times",
            StudyView::PairTypePerformance => "pair-type-performance",
            StudyView::PathsTaken => "paths-taken",
            StudyView::HopRateProgression => "hop-rate-progression",
            StudyView::HopRatesTaken => "hop-rates-taken",
            StudyView::RateRatios => "rate-ratios",
            StudyView::ModelValidation => "model-validation",
        }
    }

    /// Parses a view slug.
    pub fn parse(name: &str) -> Option<StudyView> {
        StudyView::all().into_iter().find(|v| v.name() == name)
    }

    /// The study that produces this view.
    pub fn study(&self) -> StudyId {
        match self {
            StudyView::ActivityTimeseries | StudyView::ContactCountCdf => StudyId::Activity,
            StudyView::ExplosionCdfs
            | StudyView::ExplosionScatter
            | StudyView::ExplosionGrowth
            | StudyView::ExplosionPairTypes => StudyId::Explosion,
            StudyView::DelayVsSuccess
            | StudyView::DelayDistributions
            | StudyView::ReceptionTimes
            | StudyView::PairTypePerformance => StudyId::Forwarding,
            StudyView::PathsTaken => StudyId::PathsTaken,
            StudyView::HopRateProgression | StudyView::HopRatesTaken | StudyView::RateRatios => {
                StudyId::HopRates
            }
            StudyView::ModelValidation => StudyId::Model,
        }
    }

    fn needs_explosion(&self) -> bool {
        matches!(
            self,
            StudyView::ExplosionCdfs
                | StudyView::ExplosionScatter
                | StudyView::ExplosionGrowth
                | StudyView::ExplosionPairTypes
                | StudyView::HopRateProgression
                | StudyView::RateRatios
        )
    }

    fn needs_forwarding(&self) -> bool {
        matches!(
            self,
            StudyView::DelayVsSuccess
                | StudyView::DelayDistributions
                | StudyView::ReceptionTimes
                | StudyView::PairTypePerformance
                | StudyView::HopRatesTaken
        )
    }
}

/// Parses a comma-separated list of view slugs, validated against the
/// study's registered views. Unknown or foreign views produce an error
/// listing the valid names — the `--views` CLI contract.
pub fn parse_views(study: StudyId, list: &str) -> Result<Vec<StudyView>, StudyPlanError> {
    let valid = study.views();
    let valid_names = || valid.iter().map(|v| v.name()).collect::<Vec<_>>().join(", ");
    let mut views = Vec::new();
    for raw in list.split(',') {
        let name = raw.trim();
        if name.is_empty() {
            continue;
        }
        match StudyView::parse(name) {
            Some(view) if valid.contains(&view) => {
                if !views.contains(&view) {
                    views.push(view);
                }
            }
            Some(view) => {
                return Err(StudyPlanError::new(format!(
                    "view {name:?} belongs to study {}, not {study} (valid views: {})",
                    view.study(),
                    valid_names()
                )))
            }
            None => {
                return Err(StudyPlanError::new(format!(
                    "unknown view {name:?} for study {study} (valid views: {})",
                    valid_names()
                )))
            }
        }
    }
    if views.is_empty() {
        return Err(StudyPlanError::new(format!(
            "no views selected (valid views for {study}: {})",
            valid_names()
        )));
    }
    Ok(views)
}

/// Numeric parameters of a study run, usually derived from an
/// [`ExperimentProfile`] and then tweaked.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyParams {
    /// Worker threads shared by the per-run loop, path enumeration and the
    /// forwarding simulator (`0` = one per core). Never changes results.
    // psn-analyze: cache-excluded(thread count never changes results; outputs are pinned byte-identical across worker counts)
    pub threads: usize,
    /// Slot width Δ in seconds for the space-time graph and history
    /// timeline (result-relevant: it quantizes every contact).
    pub delta: Seconds,
    /// Streaming execution: build the graph and timeline in one bounded
    /// pass over the contact-event stream, keeping only this many sealed
    /// slots hot and spilling cold slots to disk. `None` = the materialized
    /// reference engines. Never changes results (pinned by differential
    /// tests), so — like `threads` — it is excluded from cache keys.
    // psn-analyze: cache-excluded(streaming engine is pinned byte-identical to the materialized engines; window size never changes results)
    pub streaming_window: Option<usize>,
    /// Path-enumeration configuration (k, caps, Δ).
    pub enumeration: EnumerationConfig,
    /// The explosion threshold n defining `Tₙ`.
    pub explosion_threshold: usize,
    /// Number of uniformly drawn messages for the explosion study.
    pub enumeration_messages: usize,
    /// Seed of the explosion study's message workload.
    pub enumeration_message_seed: u64,
    /// Forwarding workload: absolute generation horizon in seconds, or
    /// `None` to use two thirds of the scenario's window. Either way the
    /// horizon is capped at two thirds of the window, so a profile-derived
    /// horizon (7200 s at paper scale) never generates messages that a
    /// shorter-window scenario could not possibly deliver. The paper
    /// datasets sit exactly at the cap, so preset outputs are unaffected.
    pub workload_horizon: Option<Seconds>,
    /// Forwarding workload: mean message inter-arrival time.
    pub workload_interarrival: Seconds,
    /// Forwarding workload: RNG seed.
    pub workload_seed: u64,
    /// Independent simulation runs to average over.
    pub simulation_runs: usize,
    /// Number of individual messages for the paths-taken study.
    pub paths_taken_messages: usize,
    /// Seed of the paths-taken message workload.
    pub paths_taken_seed: u64,
    /// Replications for the analytic-model validation.
    pub model_replications: usize,
}

impl StudyParams {
    /// The parameters the pre-refactor figure binaries used at `profile`
    /// scale (the golden-file tests pin presets built from these).
    pub fn for_profile(profile: ExperimentProfile) -> Self {
        let workload = profile.workload(2);
        Self {
            threads: 0,
            delta: psn_spacetime::DEFAULT_DELTA,
            streaming_window: None,
            enumeration: profile.enumeration_config(),
            explosion_threshold: profile.explosion_threshold(),
            enumeration_messages: profile.enumeration_messages(),
            enumeration_message_seed: 0xEC0,
            workload_horizon: Some(workload.generation_horizon),
            workload_interarrival: workload.mean_interarrival,
            workload_seed: workload.seed,
            simulation_runs: profile.simulation_runs(),
            paths_taken_messages: 4,
            paths_taken_seed: 88,
            model_replications: match profile {
                ExperimentProfile::Paper => 200,
                ExperimentProfile::Quick => 30,
            },
        }
    }

    /// Returns the parameters with a different worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Replaces the per-node path budget `k` (and its derived caps) — the
    /// semantics of the CLI's `--k` and of a `params.k` sweep axis. Large
    /// scenarios want much smaller budgets than the paper's 98-node
    /// datasets.
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k >= 1, "the path budget k must be at least 1");
        self.enumeration = EnumerationConfig::quick(k);
        self.explosion_threshold = self.explosion_threshold.min(50 * k);
        self
    }

    /// Replaces the message counts of the enumeration and paths-taken
    /// workloads — the CLI's `--messages` / a `params.messages` axis.
    pub fn with_messages(mut self, messages: usize) -> Self {
        self.enumeration_messages = messages;
        self.paths_taken_messages = messages;
        self
    }

    /// Replaces the independent simulation-run count — the CLI's `--runs`
    /// / a `params.runs` axis.
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.simulation_runs = runs.max(1);
        self
    }

    /// Replaces the slot width Δ — the CLI's `--delta` / a `params.delta`
    /// sweep axis.
    pub fn with_delta(mut self, delta: Seconds) -> Self {
        assert!(delta > 0.0 && delta.is_finite(), "delta must be a positive slot width");
        self.delta = delta;
        self
    }

    /// Selects streaming execution with a hot window of `window` slots —
    /// the CLI's `--streaming` / `--window N`.
    pub fn with_streaming_window(mut self, window: Option<usize>) -> Self {
        self.streaming_window = window.map(|w| w.max(1));
        self
    }

    /// Feeds every **result-relevant** parameter into a fingerprint
    /// hasher. `threads` is deliberately excluded: worker counts never
    /// change results (pinned by differential tests), so they must not
    /// split cache keys.
    fn hash_into(&self, hasher: &mut FingerprintHasher) {
        let e = &self.enumeration;
        hasher.write_f64(self.delta);
        hasher.write_u64(e.k as u64);
        match e.max_delivered_paths {
            Some(v) => hasher.write_u64(v as u64),
            None => hasher.write_none(),
        }
        hasher.write_u64(e.stored_path_limit as u64);
        hasher.write_bool(e.enforce_first_preference);
        hasher.write_u64(self.explosion_threshold as u64);
        hasher.write_u64(self.enumeration_messages as u64);
        hasher.write_u64(self.enumeration_message_seed);
        match self.workload_horizon {
            Some(v) => hasher.write_f64(v),
            None => hasher.write_none(),
        }
        hasher.write_f64(self.workload_interarrival);
        hasher.write_u64(self.workload_seed);
        hasher.write_u64(self.simulation_runs as u64);
        hasher.write_u64(self.paths_taken_messages as u64);
        hasher.write_u64(self.paths_taken_seed);
        hasher.write_u64(self.model_replications as u64);
    }

    /// Canonical rendering of the result-relevant parameters — the
    /// human-readable half of the cell identity string (`threads` and
    /// `streaming_window` excluded, matching [`StudyParams::hash_into`]:
    /// neither changes results, so neither may split cache keys).
    fn identity(&self) -> String {
        let e = &self.enumeration;
        format!(
            "delta={:?} k={} max_delivered={:?} stored={} first_pref={} te={} emsgs={} eseed={} \
             horizon={:?} interarrival={:?} wseed={} runs={} ptmsgs={} ptseed={} reps={}",
            self.delta,
            e.k,
            e.max_delivered_paths,
            e.stored_path_limit,
            e.enforce_first_preference,
            self.explosion_threshold,
            self.enumeration_messages,
            self.enumeration_message_seed,
            self.workload_horizon,
            self.workload_interarrival,
            self.workload_seed,
            self.simulation_runs,
            self.paths_taken_messages,
            self.paths_taken_seed,
            self.model_replications
        )
    }

    /// The forwarding workload for a scenario with `nodes` nodes over
    /// `window_seconds`.
    fn forwarding_workload(&self, nodes: usize, window_seconds: Seconds) -> MessageWorkloadConfig {
        let cap = (window_seconds * 2.0 / 3.0).max(1.0);
        MessageWorkloadConfig {
            nodes,
            generation_horizon: self.workload_horizon.map_or(cap, |h| h.min(cap)),
            mean_interarrival: self.workload_interarrival,
            seed: self.workload_seed,
        }
    }
}

/// One scenario entry of a spec: the generator configuration plus the label
/// report sections carry.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyScenario {
    /// Section label (a dataset label like "Infocom06 9-12" for the paper
    /// presets, or the scenario name for config-driven runs).
    pub label: String,
    /// The generator configuration.
    pub config: ScenarioConfig,
    /// Per-run study-parameter overrides (`None` = the spec's shared
    /// params). Set by `params.*` sweep axes, where cells vary k, message
    /// counts or run counts over one shared scenario.
    pub params: Option<StudyParams>,
}

impl From<ScenarioConfig> for StudyScenario {
    fn from(config: ScenarioConfig) -> Self {
        Self { label: config.name(), config, params: None }
    }
}

impl StudyScenario {
    /// The paper dataset `id` at `profile` scale, labelled the way the
    /// figures label it.
    pub fn dataset(id: psn_trace::DatasetId, profile: ExperimentProfile) -> Self {
        Self { label: id.label().to_string(), config: profile.dataset(id).into(), params: None }
    }
}

/// A declarative description of one study invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct StudySpec {
    /// Which study to run.
    pub study: StudyId,
    /// The scenarios to run it over (empty is valid only for
    /// [`StudyId::Model`]).
    pub scenarios: Vec<StudyScenario>,
    /// Extra generator seeds: every scenario is re-run once per listed seed
    /// (in addition to its configured seed) as an independent replication.
    pub extra_seeds: Vec<u64>,
    /// The views to render; empty means every view of the study.
    pub views: Vec<StudyView>,
    /// Numeric parameters.
    pub params: StudyParams,
}

/// Errors detected while resolving a [`StudySpec`] into a [`StudyPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyPlanError {
    message: String,
}

impl StudyPlanError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for StudyPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "study plan error: {}", self.message)
    }
}

impl std::error::Error for StudyPlanError {}

/// How execution responds to a failing cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RunPolicy {
    /// Stop at the first cell failure and report it (the default).
    #[default]
    FailFast,
    /// Finish every remaining cell; failed cells are recorded in
    /// [`StudyReport::failures`] and summarized in a typed
    /// `failure-summary` section appended to the report.
    KeepGoing,
}

/// The typed record of one cell (planned run) that failed to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// The failed run's label.
    pub label: String,
    /// What went wrong — a panic message or an artifact-layer error.
    pub message: String,
    /// True when the cell's workers panicked (as opposed to returning a
    /// typed error).
    pub panicked: bool,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell {:?} {}: {}",
            self.label,
            if self.panicked { "panicked" } else { "failed" },
            self.message
        )
    }
}

/// Why a study (or sweep) failed to execute. The CLI maps each variant to
/// a distinct exit code: plan errors are configuration mistakes, artifact
/// errors are cache problems, cell errors are execution failures.
#[derive(Debug)]
pub enum StudyError {
    /// The spec could not be resolved into a plan.
    Plan(StudyPlanError),
    /// The artifact layer refused a resolution (identity collision,
    /// unusable cache directory).
    Artifact(ArtifactError),
    /// A cell failed under [`RunPolicy::FailFast`].
    Cell(CellFailure),
}

impl std::fmt::Display for StudyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StudyError::Plan(e) => write!(f, "{e}"),
            StudyError::Artifact(e) => write!(f, "{e}"),
            StudyError::Cell(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StudyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StudyError::Plan(e) => Some(e),
            StudyError::Artifact(e) => Some(e),
            StudyError::Cell(_) => None,
        }
    }
}

impl From<StudyPlanError> for StudyError {
    fn from(e: StudyPlanError) -> Self {
        StudyError::Plan(e)
    }
}

impl From<ArtifactError> for StudyError {
    fn from(e: ArtifactError) -> Self {
        StudyError::Artifact(e)
    }
}

impl StudySpec {
    /// Creates a spec running every view of `study` over `scenarios`.
    pub fn new(study: StudyId, scenarios: Vec<StudyScenario>, params: StudyParams) -> Self {
        Self { study, scenarios, extra_seeds: Vec::new(), views: Vec::new(), params }
    }

    /// Restricts the spec to specific views.
    pub fn with_views(mut self, views: Vec<StudyView>) -> Self {
        self.views = views;
        self
    }

    /// Adds seed replications.
    pub fn with_extra_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.extra_seeds = seeds;
        self
    }

    /// Resolves the spec into a concrete plan: expands seed replications,
    /// validates views against the study, and checks labels are unique.
    pub fn plan(&self) -> Result<StudyPlan, StudyPlanError> {
        let mut views = if self.views.is_empty() { self.study.views() } else { self.views.clone() };
        // A repeated view would duplicate sections and work.
        let mut seen = Vec::with_capacity(views.len());
        views.retain(|v| {
            let fresh = !seen.contains(v);
            seen.push(*v);
            fresh
        });
        for view in &views {
            if view.study() != self.study {
                return Err(StudyPlanError::new(format!(
                    "view {view:?} belongs to study {}, not {}",
                    view.study(),
                    self.study
                )));
            }
        }
        if self.scenarios.is_empty() && self.study != StudyId::Model {
            return Err(StudyPlanError::new(format!(
                "study {} needs at least one scenario",
                self.study
            )));
        }

        let mut runs = Vec::new();
        for scenario in &self.scenarios {
            runs.push(PlannedRun {
                label: scenario.label.clone(),
                config: scenario.config.clone(),
                params: scenario.params.clone(),
            });
            for &seed in &self.extra_seeds {
                runs.push(PlannedRun {
                    label: format!("{} (seed {seed})", scenario.label),
                    config: scenario.config.with_seed(seed),
                    params: scenario.params.clone(),
                });
            }
        }
        let mut labels: Vec<&str> = runs.iter().map(|r| r.label.as_str()).collect();
        labels.sort_unstable();
        if let Some(w) = labels.windows(2).find(|w| w[0] == w[1]) {
            return Err(StudyPlanError::new(format!("duplicate scenario label {:?}", w[0])));
        }

        Ok(StudyPlan { study: self.study, runs, views, params: self.params.clone() })
    }
}

/// One concrete trace-generation + analysis run of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedRun {
    /// Section label.
    pub label: String,
    /// The resolved scenario configuration (seed replication applied).
    pub config: ScenarioConfig,
    /// Per-run study-parameter overrides (`None` = the plan's shared
    /// params).
    pub params: Option<StudyParams>,
}

impl PlannedRun {
    /// The effective parameters of this run under `plan_params`.
    pub fn effective_params<'a>(&'a self, plan_params: &'a StudyParams) -> &'a StudyParams {
        self.params.as_ref().unwrap_or(plan_params)
    }
}

/// A resolved, validated study plan — the unit [`run_study`] executes.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyPlan {
    /// Which study runs.
    pub study: StudyId,
    /// The concrete runs, in report order.
    pub runs: Vec<PlannedRun>,
    /// The views rendered per run, in report order.
    pub views: Vec<StudyView>,
    /// Numeric parameters.
    pub params: StudyParams,
}

impl StudyPlan {
    /// A human-readable summary of what will run (for `psn-study` dry
    /// output and logging).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("study: {}\n", self.study);
        let views: Vec<&str> = self.views.iter().map(|v| v.name()).collect();
        let _ = writeln!(out, "views: [{}]", views.join(", "));
        let _ = writeln!(out, "threads: {} (0 = one per core)", self.params.threads);
        for run in &self.runs {
            let p = run.effective_params(&self.params);
            let overrides = if run.params.is_some() {
                format!(
                    ", params k={} messages={} runs={}",
                    p.enumeration.k, p.enumeration_messages, p.simulation_runs
                )
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "run: {:?} — {} ({} nodes, {:.0} s window, seed {}{overrides})",
                run.label,
                run.config.kind(),
                run.config.node_count(),
                run.config.window_seconds(),
                run.config.seed()
            );
        }
        out
    }
}

/// Cache provenance of one executed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCache {
    /// The run's section label.
    pub label: String,
    /// Where the run's sections came from: computed, or served from the
    /// artifact store's memory/disk tier.
    pub source: CacheSource,
}

/// The executed result of a [`StudyPlan`]: a typed report document plus
/// the study tag.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyReport {
    /// The study that ran.
    pub study: StudyId,
    /// The typed report: one tagged section per (run, view) — or several,
    /// for views that emit one section per case/algorithm — in plan order.
    pub doc: ReportDoc,
    /// Per-run cache provenance, in plan order (empty for the model
    /// study). Deliberately *outside* [`StudyReport::doc`]: cold and warm
    /// runs must render byte-identical reports, so provenance can never be
    /// report content.
    pub cache: Vec<RunCache>,
    /// Cells that failed under [`RunPolicy::KeepGoing`], in plan order
    /// (always empty under fail-fast, which surfaces the first failure as
    /// a [`StudyError::Cell`] instead). When non-empty, the report's last
    /// section is the typed `failure-summary` over these records.
    pub failures: Vec<CellFailure>,
}

impl StudyReport {
    /// Renders the report through the text backend — the exact byte stream
    /// the pre-refactor binaries printed after their header.
    pub fn render(&self) -> String {
        TextRenderer.render_text(&self.doc)
    }

    /// Renders the report through any backend.
    pub fn render_with(&self, renderer: &dyn Renderer) -> Vec<Artifact> {
        renderer.render(&self.doc)
    }

    /// The sections belonging to one scenario label.
    pub fn sections_for(&self, scenario: &str) -> Vec<&Section> {
        self.doc.sections_for(scenario)
    }
}

/// Per-run engine outputs, computed once and shared across views.
struct RunOutputs {
    explosion: Option<ExplosionStudy>,
    forwarding: Option<ForwardingStudy>,
    activity: Option<ActivityReport>,
    hop_rates: Option<HopRateStudy>,
}

fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// Tags a built section with its run, view and generator metadata.
fn tag(mut section: Section, run: &PlannedRun, view: StudyView) -> Section {
    section.scenario = run.label.clone();
    section.view = view.name().to_string();
    section.run = Some(RunMeta {
        scenario_kind: run.config.kind().to_string(),
        seed: run.config.seed(),
        nodes: run.config.node_count(),
        window_seconds: run.config.window_seconds(),
    });
    section
}

/// The content address of one run's result sections: everything that
/// determines the bytes — study, views, section label, the scenario's
/// structural fingerprint and the result-relevant parameters. Returns the
/// key plus the canonical identity string stores compare on every hit to
/// rule hash collisions out. Worker-thread counts are excluded on both
/// sides (they never change results).
fn cell_key(
    study: StudyId,
    views: &[StudyView],
    run: &PlannedRun,
    params: &StudyParams,
) -> (ArtifactKey, String) {
    let mut hasher = FingerprintHasher::new("psn-cell/1");
    hasher.write_str(study.name());
    for view in views {
        hasher.write_str(view.name());
    }
    hasher.write_str(&run.label);
    hasher.write_fingerprint(run.config.fingerprint());
    params.hash_into(&mut hasher);
    let view_names: Vec<&str> = views.iter().map(|v| v.name()).collect();
    let identity = format!(
        "study={} views=[{}] label={:?} params[{}] scenario={}",
        study.name(),
        view_names.join(","),
        run.label,
        params.identity(),
        run.config.canonical_identity()
    );
    (ArtifactKey { kind: ArtifactKind::Result, fingerprint: hasher.finish() }, identity)
}

/// The result fingerprint of every planned run, in plan order — what
/// `psn-study sweep --resume` checks against the disk tier to report, up
/// front, how many cells an interrupted sweep already completed.
pub fn planned_result_fingerprints(plan: &StudyPlan) -> Vec<(String, psn_trace::Fingerprint)> {
    plan.runs
        .iter()
        .map(|run| {
            let (key, _) =
                cell_key(plan.study, &plan.views, run, run.effective_params(&plan.params));
            (run.label.clone(), key.fingerprint)
        })
        .collect()
}

/// Rough byte weight of cached result sections, for the store's LRU
/// budget. Counts the bulk carriers (table cells, series points, strings);
/// exact allocator overhead does not matter at budget granularity.
fn sections_approx_bytes(sections: &[Section]) -> usize {
    let mut bytes = 0usize;
    for section in sections {
        bytes += 256 + section.scenario.len() + section.view.len();
        bytes += section.stats.len() * 64;
        for block in &section.blocks {
            bytes += match block {
                Block::Title(s) | Block::Heading(s) | Block::Note(s) => 32 + s.len(),
                Block::Scalar(_) => 64,
                Block::Table(t) => {
                    128 + t.rows.len() * t.columns.len() * 24
                        + t.columns.iter().map(|c| c.name.len()).sum::<usize>()
                }
                Block::Series(s) => 128 + s.points.len() * 16,
            };
        }
    }
    bytes
}

/// Executes one planned run with full fault isolation: the cell's whole
/// execution (artifact resolution + engines) runs under `catch_unwind`,
/// so a panicking worker or a typed artifact error surfaces as one
/// [`CellFailure`] — never a process abort, never a poisoned store.
fn run_one(
    plan: &StudyPlan,
    run: &PlannedRun,
    threads: usize,
    store: &ArtifactStore,
) -> Result<(CacheSource, Vec<Section>), CellFailure> {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        psn_fault::inject_job(psn_fault::sites::QUEUE_STUDY_RUN);
        run_one_inner(plan, run, threads, store)
    }));
    match outcome {
        Ok(Ok(done)) => Ok(done),
        Ok(Err(error)) => Err(CellFailure {
            label: run.label.clone(),
            message: error.to_string(),
            panicked: false,
        }),
        Err(payload) => Err(CellFailure {
            label: run.label.clone(),
            message: psn_fault::panic_message(payload.as_ref()),
            panicked: true,
        }),
    }
}

/// Resolves one run's result through the artifact store: a memoized
/// result (memory or disk tier) is served without touching the engines;
/// otherwise the sections are computed — via store-shared
/// trace/graph/timeline artifacts — then cached. Returns the provenance
/// alongside the sections.
fn run_one_inner(
    plan: &StudyPlan,
    run: &PlannedRun,
    threads: usize,
    store: &ArtifactStore,
) -> Result<(CacheSource, Vec<Section>), ArtifactError> {
    let params = run.effective_params(&plan.params);
    let (key, identity) = cell_key(plan.study, &plan.views, run, params);
    let (sections, source) = store.get_or_build(key, &identity, || {
        if let Some(text) = store.load_result_text(key.fingerprint, &identity) {
            // `parse(render(doc)) == doc` holds for every study (the
            // round-trip tests pin it), so disk-served sections are
            // value-identical to the cold computation and re-render to the
            // same bytes.
            match JsonRenderer.parse(&text) {
                Ok(doc) => {
                    return Ok(BuiltArtifact {
                        bytes: text.len(),
                        value: doc.sections,
                        source: CacheSource::Disk,
                    });
                }
                // A payload that passed the sidecar check but does not
                // parse is corruption: quarantine it and rebuild.
                Err(e) => store.quarantine_result_text(
                    key.fingerprint,
                    &format!("result payload failed to parse: {e}"),
                ),
            }
        }
        let sections = compute_run_sections(plan, run, params, threads, store)?;
        if store.disk().is_some() {
            let mut doc = ReportDoc::new(plan.study.name());
            doc.sections = sections.clone();
            store.store_result_text(key.fingerprint, &identity, &JsonRenderer.render_json(&doc));
        }
        Ok(BuiltArtifact {
            bytes: sections_approx_bytes(&sections),
            value: sections,
            source: CacheSource::Built,
        })
    })?;
    Ok((source, (*sections).clone()))
}

/// Computes one run's typed sections with `threads` engine workers,
/// resolving the trace, space-time graph and history timeline through the
/// artifact store so every run over the same scenario shares them.
/// What one run's engines read their trace-level statistics from: the
/// memoized materialized trace, or the summary folded online from the
/// contact-event stream (stream-native mode, which never materializes).
enum RunSource {
    Materialized(std::sync::Arc<psn_trace::ContactTrace>),
    Streamed(psn_trace::ContactSummary),
}

impl RunSource {
    fn node_count(&self) -> usize {
        match self {
            RunSource::Materialized(trace) => trace.node_count(),
            RunSource::Streamed(summary) => summary.node_count(),
        }
    }

    fn window_duration(&self) -> Seconds {
        match self {
            RunSource::Materialized(trace) => trace.window().duration(),
            RunSource::Streamed(summary) => summary.window().duration(),
        }
    }
}

fn compute_run_sections(
    plan: &StudyPlan,
    run: &PlannedRun,
    p: &StudyParams,
    threads: usize,
    store: &ArtifactStore,
) -> Result<Vec<Section>, ArtifactError> {
    let needs_explosion = plan.views.iter().any(StudyView::needs_explosion);
    let needs_forwarding = plan.views.iter().any(StudyView::needs_forwarding);
    let needs_activity = plan
        .views
        .iter()
        .any(|v| matches!(v, StudyView::ActivityTimeseries | StudyView::ContactCountCdf));
    let needs_hop_rates = plan
        .views
        .iter()
        .any(|v| matches!(v, StudyView::HopRateProgression | StudyView::RateRatios));

    let has_paths_taken = plan.views.contains(&StudyView::PathsTaken);
    // The graph and timeline are resolved up front (not per engine):
    // enumeration, the simulator and the paths-taken analysis all share the
    // one Δ-slotted graph of this scenario. Materialized mode memoizes both
    // through the artifact store, shared across every run, seed and sweep
    // cell with the same fingerprint. Streaming mode never touches the
    // trace artifact at all: the scenario's O(1)-state stream source feeds
    // one pass that folds the bounded-window graph, the timeline and every
    // trace aggregate the engines need (rates, pair counts, activity bins)
    // together, with outputs pinned bit-identical to the materialized
    // engines by differential tests — which is why `streaming_window`
    // stays out of cache keys.
    let needs_graph = needs_explosion || needs_forwarding || has_paths_taken;
    let needs_timeline = needs_forwarding || has_paths_taken;
    // The forwarding oracle is the only consumer of the O(nodes²) pair
    // matrix; enumeration/activity-only studies fold per-node state only.
    let needs_pair_counts = needs_timeline;
    let (source, graph, timeline): (
        RunSource,
        Option<psn_spacetime::SharedGraph>,
        Option<std::sync::Arc<psn_forwarding::HistoryTimeline>>,
    ) = match p.streaming_window {
        None => {
            let (trace, _) = store.scenario_trace(&run.config)?;
            let (graph, timeline) = if needs_graph {
                let graph = store.spacetime_graph(&run.config, &trace, p.delta)?.0;
                let timeline = if needs_timeline {
                    Some(store.history_timeline(&run.config, &graph, p.delta)?.0)
                } else {
                    None
                };
                (Some(graph.into()), timeline)
            } else {
                (None, None)
            };
            (RunSource::Materialized(trace), graph, timeline)
        }
        Some(window) => {
            let mut stream = if needs_pair_counts {
                psn_trace::SummarizingStream::new(run.config.stream(p.delta))
            } else {
                psn_trace::SummarizingStream::rates_only(run.config.stream(p.delta))
            };
            let (graph, timeline) = if needs_graph {
                let (graph, timeline) =
                    stream_graph_and_timeline(&mut stream, window, needs_timeline, store)?;
                (Some(graph), timeline)
            } else {
                // Activity-only studies have no graph to fold, but the
                // summary still wants every event.
                while stream
                    .next_event()
                    .map_err(|e| ArtifactError::Io {
                        context: "draining scenario contact stream".to_string(),
                        source: std::io::Error::other(e.to_string()),
                    })?
                    .is_some()
                {}
                (None, None)
            };
            (RunSource::Streamed(stream.into_summary()), graph, timeline)
        }
    };

    let mut outputs =
        RunOutputs { explosion: None, forwarding: None, activity: None, hop_rates: None };
    if needs_explosion {
        let generator = MessageGenerator::new(MessageWorkloadConfig {
            nodes: source.node_count(),
            generation_horizon: (source.window_duration() * 2.0 / 3.0).max(1.0),
            mean_interarrival: 4.0,
            seed: p.enumeration_message_seed,
        });
        let messages = generator.uniform_messages(p.enumeration_messages);
        let graph = graph.as_ref().unwrap_or_else(|| unreachable!("explosion implies a graph"));
        outputs.explosion = Some(match &source {
            RunSource::Materialized(trace) => run_explosion_study_on_graph(
                run.label.clone(),
                trace,
                graph,
                &messages,
                p.enumeration.clone(),
                p.explosion_threshold,
                threads,
            ),
            RunSource::Streamed(summary) => run_explosion_study_streamed(
                run.label.clone(),
                summary.rates(),
                graph,
                &messages,
                p.enumeration.clone(),
                p.explosion_threshold,
                threads,
            ),
        });
    }
    if needs_forwarding {
        let workload = p.forwarding_workload(source.node_count(), source.window_duration());
        let graph = graph.clone().unwrap_or_else(|| unreachable!("forwarding implies a graph"));
        let timeline =
            timeline.clone().unwrap_or_else(|| unreachable!("forwarding implies a timeline"));
        outputs.forwarding = Some(match &source {
            RunSource::Materialized(trace) => run_forwarding_study_shared(
                run.label.clone(),
                trace,
                graph,
                timeline,
                workload,
                p.simulation_runs,
                threads,
            ),
            RunSource::Streamed(summary) => run_forwarding_study_streamed(
                run.label.clone(),
                summary,
                graph,
                timeline,
                workload,
                p.simulation_runs,
                threads,
            ),
        });
    }
    if needs_activity {
        outputs.activity = Some(match &source {
            RunSource::Materialized(trace) => activity_report(run.label.clone(), trace),
            RunSource::Streamed(summary) => activity_report_streamed(run.label.clone(), summary),
        });
    }
    if needs_hop_rates {
        let study = outputs
            .explosion
            .as_ref()
            .unwrap_or_else(|| unreachable!("hop-rate views imply explosion"));
        outputs.hop_rates = Some(run_hop_rate_study(&study.sample_paths, &study.rates));
    }

    let mut sections = Vec::new();
    for &view in &plan.views {
        let built: Vec<Section> = match view {
            StudyView::ActivityTimeseries => {
                vec![outputs
                    .activity
                    .as_ref()
                    .unwrap_or_else(|| unreachable!("activity precomputed"))
                    .timeseries_section()]
            }
            StudyView::ContactCountCdf => {
                vec![outputs
                    .activity
                    .as_ref()
                    .unwrap_or_else(|| unreachable!("activity precomputed"))
                    .contact_cdf_section()]
            }
            StudyView::ExplosionCdfs => {
                vec![outputs
                    .explosion
                    .as_ref()
                    .unwrap_or_else(|| unreachable!("explosion precomputed"))
                    .cdfs_section()]
            }
            StudyView::ExplosionScatter => {
                vec![outputs
                    .explosion
                    .as_ref()
                    .unwrap_or_else(|| unreachable!("explosion precomputed"))
                    .scatter_section()]
            }
            StudyView::ExplosionGrowth => {
                vec![outputs
                    .explosion
                    .as_ref()
                    .unwrap_or_else(|| unreachable!("explosion precomputed"))
                    .growth_section()]
            }
            StudyView::ExplosionPairTypes => {
                vec![outputs
                    .explosion
                    .as_ref()
                    .unwrap_or_else(|| unreachable!("explosion precomputed"))
                    .pair_type_section()]
            }
            StudyView::DelayVsSuccess => vec![outputs
                .forwarding
                .as_ref()
                .unwrap_or_else(|| unreachable!("forwarding precomputed"))
                .delay_vs_success_section()],
            StudyView::DelayDistributions => vec![outputs
                .forwarding
                .as_ref()
                .unwrap_or_else(|| unreachable!("forwarding precomputed"))
                .delay_distributions_section()],
            StudyView::ReceptionTimes => vec![outputs
                .forwarding
                .as_ref()
                .unwrap_or_else(|| unreachable!("forwarding precomputed"))
                .reception_times_section()],
            StudyView::PairTypePerformance => vec![outputs
                .forwarding
                .as_ref()
                .unwrap_or_else(|| unreachable!("forwarding precomputed"))
                .pair_type_section()],
            StudyView::PathsTaken => {
                let generator = MessageGenerator::new(MessageWorkloadConfig {
                    nodes: source.node_count(),
                    generation_horizon: source.window_duration() * 2.0 / 3.0,
                    mean_interarrival: 4.0,
                    seed: p.paths_taken_seed,
                });
                let messages = generator.uniform_messages(p.paths_taken_messages);
                let graph =
                    graph.clone().unwrap_or_else(|| unreachable!("paths-taken implies a graph"));
                let timeline = timeline
                    .clone()
                    .unwrap_or_else(|| unreachable!("paths-taken implies a timeline"));
                let cases = match &source {
                    RunSource::Materialized(trace) => run_paths_taken_shared(
                        trace,
                        graph,
                        timeline,
                        &messages,
                        p.enumeration.clone(),
                    ),
                    RunSource::Streamed(summary) => run_paths_taken_streamed(
                        summary,
                        graph,
                        timeline,
                        &messages,
                        p.enumeration.clone(),
                    ),
                };
                cases.iter().map(|case| case.section()).collect()
            }
            StudyView::HopRateProgression => {
                vec![outputs
                    .hop_rates
                    .as_ref()
                    .unwrap_or_else(|| unreachable!("hop rates precomputed"))
                    .mean_rate_section()]
            }
            StudyView::HopRatesTaken => {
                let study = outputs
                    .forwarding
                    .as_ref()
                    .unwrap_or_else(|| unreachable!("forwarding precomputed"));
                study
                    .algorithms
                    .iter()
                    .map(|algo| {
                        run_hop_rate_study_on_outcomes(&algo.outcomes, &study.rates)
                            .taken_by_section(algo.kind.label())
                    })
                    .collect()
            }
            StudyView::RateRatios => {
                vec![outputs
                    .hop_rates
                    .as_ref()
                    .unwrap_or_else(|| unreachable!("hop rates precomputed"))
                    .rate_ratio_section()]
            }
            StudyView::ModelValidation => {
                unreachable!("model views are rejected for scenario studies by plan()")
            }
        };
        sections.extend(built.into_iter().map(|s| tag(s, run, view)));
    }
    Ok(sections)
}

/// Builds the bounded-window space-time graph and (when needed) the
/// history timeline in **one pass** over a contact-event stream — the
/// streaming execution mode. The source is any [`psn_trace::ContactStream`]:
/// a trace adapter, or (stream-native mode) a scenario's O(1)-state
/// generator-backed stream, typically wrapped in a
/// [`psn_trace::SummarizingStream`] so the same pass also folds the trace
/// aggregates. Cold slots spill raw slot records into a private slab temp
/// file (the fast spill path; removed when the graph is dropped), and the
/// timeline builder folds each sealed busy slot as the window advances, so
/// neither structure ever holds more than O(window) slots in memory. The
/// peak working set (hot slots + spill scratch + timeline builder) is
/// recorded on the store for the `--cache` summary.
fn stream_graph_and_timeline(
    stream: &mut impl psn_trace::ContactStream,
    window: usize,
    needs_timeline: bool,
    store: &ArtifactStore,
) -> Result<
    (psn_spacetime::SharedGraph, Option<std::sync::Arc<psn_forwarding::HistoryTimeline>>),
    ArtifactError,
> {
    fn stream_error(context: &str, message: String) -> ArtifactError {
        ArtifactError::Io { context: context.to_string(), source: std::io::Error::other(message) }
    }
    let spill = psn_artifact::SlabSlotSpill::in_temp_file()
        .map_err(|e| stream_error("creating streaming spill slab", e.to_string()))?;
    let mut builder =
        needs_timeline.then(|| psn_forwarding::TimelineBuilder::new(stream.node_count()));
    let mut builder_peak = 0usize;
    let graph = psn_spacetime::WindowedSpaceTimeGraph::stream_with(
        stream,
        window,
        Box::new(spill),
        |slot, sealed| {
            if let Some(b) = builder.as_mut() {
                b.push_slot(slot, sealed.edges());
                builder_peak = builder_peak.max(b.approx_bytes());
            }
        },
    )
    .map_err(|e| stream_error("building windowed space-time graph", e.to_string()))?;
    store.record_stream_peak(graph.peak_bytes() + builder_peak);
    let timeline = builder.map(|b| {
        std::sync::Arc::new(
            b.finish((0..graph.slot_count()).map(|s| graph.slot_end_time(s)).collect()),
        )
    });
    Ok((std::sync::Arc::new(graph).into(), timeline))
}

/// Builds the typed `failure-summary` section appended to keep-going
/// reports: one table row per failed cell (label, error, whether it
/// panicked). The section only exists when failures exist, so clean runs
/// — and resumed runs that recover every cell — render byte-identically
/// to a never-failed run.
fn failure_summary_section(failures: &[CellFailure]) -> Section {
    let mut table = Table::new(
        "failed_cells",
        vec![Column::text("cell"), Column::text("error"), Column::text("panicked")],
    );
    for failure in failures {
        table.push_row(vec![
            CellValue::Text(failure.label.clone()),
            CellValue::Text(failure.message.clone()),
            CellValue::Text(if failure.panicked { "yes".into() } else { "no".into() }),
        ]);
    }
    let mut section = Section::new()
        .stat(Scalar::display("failed_cells", failures.len() as f64))
        .block(Block::Title(format!(
            "Failure summary — {} cell{} failed (rerun with --resume to recompute only these)",
            failures.len(),
            if failures.len() == 1 { "" } else { "s" }
        )))
        .block(Block::Table(table));
    section.view = "failure-summary".to_string();
    section
}

/// Executes a plan with a fresh, private in-memory artifact store — runs
/// within the plan still share traces, graphs and timelines, but nothing
/// persists past the call. See [`run_study_with`] for the shared-store /
/// disk-backed path.
///
/// Infallible by construction for the preset/golden path: with a private
/// in-memory store and no injected faults nothing can fail; if a cell
/// does fail (e.g. chaos testing armed a panic site), the failure
/// propagates as a panic carrying the typed message.
///
/// # Panics
///
/// Panics when a cell fails — only possible with injected faults, since
/// the private in-memory store removes every I/O failure mode.
pub fn run_study(plan: &StudyPlan) -> StudyReport {
    run_study_with(plan, &ArtifactStore::in_memory())
        .unwrap_or_else(|e| panic!("study execution failed: {e}"))
}

/// One run's indexed outcome as collected by the execution loops — the
/// run's position in plan order plus either its cache provenance and
/// sections or its typed failure.
type CellOutcome = (usize, Result<(CacheSource, Vec<Section>), CellFailure>);

/// Executes a plan against an artifact store under the default
/// [`RunPolicy::FailFast`] — the first failing cell aborts execution with
/// a typed [`StudyError`]. See [`run_study_with_policy`].
pub fn run_study_with(plan: &StudyPlan, store: &ArtifactStore) -> Result<StudyReport, StudyError> {
    run_study_with_policy(plan, store, RunPolicy::FailFast)
}

/// Executes a plan against an artifact store: runs the (scenario × seed)
/// cells in parallel over an `AtomicUsize` work queue honoring
/// `params.threads`, resolves every run's trace/graph/timeline — and the
/// run's whole result — through the store, and assembles the typed report.
/// Runs whose result fingerprint is already cached are served without
/// touching the engines; the report's `cache` field records each run's
/// provenance. Worker counts and cache state never change the report
/// (differential tests pin warm output bit-identical to cold).
///
/// Every cell is panic-isolated: a failing cell becomes a typed
/// [`CellFailure`]. Under [`RunPolicy::FailFast`] the first failure stops
/// the queue (in-flight cells drain, no new cells start) and is returned
/// as [`StudyError::Cell`]. Under [`RunPolicy::KeepGoing`] every cell
/// runs; failures are recorded in [`StudyReport::failures`] and
/// summarized in a `failure-summary` section appended to the report, and
/// a later re-run over the same disk cache recomputes **only** the failed
/// cells (the completed ones are served bit-identically from the store).
pub fn run_study_with_policy(
    plan: &StudyPlan,
    store: &ArtifactStore,
    policy: RunPolicy,
) -> Result<StudyReport, StudyError> {
    let mut doc = ReportDoc::new(plan.study.name());

    if plan.study == StudyId::Model {
        let validation = run_model_validation(plan.params.model_replications);
        let mut section = validation.section();
        section.view = StudyView::ModelValidation.name().to_string();
        doc.sections.push(section);
        return Ok(StudyReport { study: plan.study, doc, cache: Vec::new(), failures: Vec::new() });
    }

    let total_threads = resolve_threads(plan.params.threads);
    let workers = total_threads.min(plan.runs.len()).max(1);
    let collected: Vec<CellOutcome> = if workers <= 1 {
        let mut collected = Vec::with_capacity(plan.runs.len());
        for (idx, run) in plan.runs.iter().enumerate() {
            let outcome = run_one(plan, run, plan.params.threads, store);
            let failed = outcome.is_err();
            collected.push((idx, outcome));
            if failed && policy == RunPolicy::FailFast {
                break;
            }
        }
        collected
    } else {
        // Shard the runs over `workers` threads via a lock-free fetch-add
        // queue (per-run cost varies wildly between scenarios, so static
        // chunking would imbalance); the engine thread budget inside each
        // run shrinks so the total stays at `threads`, with the division
        // remainder spread over the first workers so no requested thread
        // sits idle (engine thread counts never change results).
        // Per-worker result vectors are merged in run order after the
        // join, keeping output identical to the serial loop. Workers share
        // the artifact store: runs racing on one scenario block on its
        // latch instead of building the trace twice. Under fail-fast a
        // cell failure raises `abort`: siblings drain their current cell
        // and stop claiming new ones.
        let extra_threads = total_threads % workers;
        let next = AtomicUsize::new(0);
        let next = &next;
        let abort = AtomicBool::new(false);
        let abort = &abort;
        let mut per_worker: Vec<Vec<CellOutcome>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let inner_threads =
                        total_threads / workers + usize::from(worker < extra_threads);
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            // relaxed: advisory abort flag; a stale read only costs one extra job.
                            if abort.load(Ordering::Relaxed) {
                                break;
                            }
                            // relaxed: work-stealing claim counter; each index is claimed once and results are joined, which orders the data.
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= plan.runs.len() {
                                break;
                            }
                            let outcome = run_one(plan, &plan.runs[idx], inner_threads, store);
                            if outcome.is_err() && policy == RunPolicy::FailFast {
                                // relaxed: advisory abort flag; a stale read only costs one extra job.
                                abort.store(true, Ordering::Relaxed);
                            }
                            local.push((idx, outcome));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|e| {
                        unreachable!("study workers catch their own panics: {e:?}")
                    })
                })
                .collect()
        });
        let mut collected: Vec<CellOutcome> =
            per_worker.iter_mut().flat_map(std::mem::take).collect();
        collected.sort_by_key(|(idx, _)| *idx);
        collected
    };

    let mut cache = Vec::with_capacity(plan.runs.len());
    let mut failures = Vec::new();
    for (idx, outcome) in collected {
        match outcome {
            Ok((source, sections)) => {
                cache.push(RunCache { label: plan.runs[idx].label.clone(), source });
                doc.sections.extend(sections);
            }
            Err(failure) => match policy {
                RunPolicy::FailFast => return Err(StudyError::Cell(failure)),
                RunPolicy::KeepGoing => failures.push(failure),
            },
        }
    }
    if !failures.is_empty() {
        doc.sections.push(failure_summary_section(&failures));
    }
    Ok(StudyReport { study: plan.study, doc, cache, failures })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::experiments::explosion::run_explosion_study_on;
    use crate::report::JsonRenderer;
    use psn_trace::generator::{CommunityConfig, ScaledConfig};
    use psn_trace::{DatasetId, ScenarioConfig};

    fn quick_params() -> StudyParams {
        // Deliberately tiny so the pipeline tests stay fast; structure, not
        // scale, is under test.
        let mut p = StudyParams::for_profile(ExperimentProfile::Quick);
        p.enumeration = EnumerationConfig::quick(30);
        p.explosion_threshold = 30;
        p.enumeration_messages = 8;
        p.simulation_runs = 1;
        p.workload_horizon = Some(600.0);
        p.workload_interarrival = 30.0;
        p.paths_taken_messages = 2;
        p.model_replications = 5;
        p.threads = 2;
        p
    }

    fn small_scenario(seed: u64) -> StudyScenario {
        StudyScenario::from(ScenarioConfig::Community(CommunityConfig {
            name: format!("pipeline-community-{seed}"),
            communities: 3,
            nodes_per_community: 6,
            window_seconds: 900.0,
            max_node_rate: 0.05,
            intra_inter_ratio: 5.0,
            mean_contact_duration: 60.0,
            contact_duration_cv: 0.5,
            seed,
        }))
    }

    /// Like [`small_scenario`] but dense enough that *every* seed produces
    /// contacts, and with a window long enough for the activity study's
    /// 30-minute tail diagnostic.
    fn dense_scenario(seed: u64) -> StudyScenario {
        StudyScenario::from(ScenarioConfig::Community(CommunityConfig {
            name: format!("pipeline-dense-{seed}"),
            communities: 2,
            nodes_per_community: 8,
            window_seconds: 2400.0,
            max_node_rate: 0.2,
            intra_inter_ratio: 4.0,
            mean_contact_duration: 40.0,
            contact_duration_cv: 0.5,
            seed,
        }))
    }

    #[test]
    fn registry_names_round_trip() {
        for study in StudyId::all() {
            assert_eq!(StudyId::parse(study.name()), Some(study));
            assert!(!study.description().is_empty());
            assert!(!study.views().is_empty());
            for view in study.views() {
                assert_eq!(view.study(), study);
            }
        }
        assert_eq!(StudyId::parse("unknown"), None);
        for view in StudyView::all() {
            assert_eq!(StudyView::parse(view.name()), Some(view));
        }
        assert_eq!(StudyView::parse("unknown"), None);
    }

    #[test]
    fn parse_views_validates_against_the_study() {
        let views = parse_views(StudyId::Forwarding, "delay-vs-success, reception-times").unwrap();
        assert_eq!(views, vec![StudyView::DelayVsSuccess, StudyView::ReceptionTimes]);

        // Repeats collapse instead of duplicating sections and work.
        let views = parse_views(StudyId::Forwarding, "delay-vs-success,delay-vs-success").unwrap();
        assert_eq!(views, vec![StudyView::DelayVsSuccess]);

        let err = parse_views(StudyId::Forwarding, "no-such-view").unwrap_err();
        assert!(err.to_string().contains("unknown view"), "{err}");
        assert!(err.to_string().contains("delay-vs-success"), "listing valid names: {err}");

        let err = parse_views(StudyId::Forwarding, "explosion-cdfs").unwrap_err();
        assert!(err.to_string().contains("belongs to study explosion"), "{err}");

        let err = parse_views(StudyId::Forwarding, " , ").unwrap_err();
        assert!(err.to_string().contains("no views selected"), "{err}");
    }

    #[test]
    fn plan_validates_views_and_scenarios() {
        let spec = StudySpec::new(StudyId::Explosion, vec![small_scenario(1)], quick_params())
            .with_views(vec![StudyView::DelayVsSuccess]);
        let err = spec.plan().expect_err("forwarding view under explosion study");
        assert!(err.to_string().contains("belongs to study"), "{err}");

        let spec = StudySpec::new(StudyId::Explosion, vec![], quick_params());
        let err = spec.plan().expect_err("no scenarios");
        assert!(err.to_string().contains("at least one scenario"), "{err}");

        // Model runs without scenarios.
        let spec = StudySpec::new(StudyId::Model, vec![], quick_params());
        assert!(spec.plan().is_ok());
    }

    #[test]
    fn plan_expands_extra_seeds_into_unique_runs() {
        let spec = StudySpec::new(StudyId::Activity, vec![small_scenario(1)], quick_params())
            .with_extra_seeds(vec![7, 8]);
        let plan = spec.plan().unwrap();
        assert_eq!(plan.runs.len(), 3);
        assert_eq!(plan.runs[0].config.seed(), 1);
        assert_eq!(plan.runs[1].config.seed(), 7);
        assert_eq!(plan.runs[2].config.seed(), 8);
        let describe = plan.describe();
        assert!(describe.contains("activity"), "{describe}");
        assert!(describe.contains("seed 7"), "{describe}");
        assert!(describe.contains("activity-timeseries"), "{describe}");

        let duplicate = StudySpec::new(
            StudyId::Activity,
            vec![small_scenario(1), small_scenario(1)],
            quick_params(),
        );
        assert!(duplicate.plan().is_err(), "duplicate labels must be rejected");
    }

    #[test]
    fn community_scenario_flows_through_explosion_study() {
        let spec = StudySpec::new(StudyId::Explosion, vec![small_scenario(3)], quick_params())
            .with_views(vec![StudyView::ExplosionCdfs]);
        let report = run_study(&spec.plan().unwrap());
        assert_eq!(report.doc.sections.len(), 1);
        let section = &report.doc.sections[0];
        assert_eq!(section.scenario, "pipeline-community-3");
        assert_eq!(section.view, "explosion-cdfs");
        let run = section.run.as_ref().expect("scenario sections carry run metadata");
        assert_eq!(run.scenario_kind, "community");
        assert_eq!(run.seed, 3);
        assert_eq!(run.nodes, 18);
        let body = report.render();
        assert!(body.contains("pipeline-community-3"), "{body}");
        assert!(body.contains("Figure 4"), "{body}");
        assert_eq!(report.sections_for("pipeline-community-3").len(), 1);
    }

    #[test]
    fn forwarding_study_runs_scaled_scenario_end_to_end() {
        let scenario = StudyScenario::from(ScenarioConfig::Scaled(ScaledConfig {
            name: "pipeline-scaled".into(),
            nodes: 80,
            window_seconds: 700.0,
            max_node_rate: 0.05,
            min_node_rate: 0.001,
            mean_contact_duration: 60.0,
            seed: 5,
        }));
        let spec = StudySpec::new(StudyId::Forwarding, vec![scenario], quick_params())
            .with_views(vec![StudyView::DelayVsSuccess]);
        let report = run_study(&spec.plan().unwrap());
        let body = report.render();
        assert!(body.contains("Figure 9"), "{body}");
        assert!(body.contains("Epidemic"), "{body}");
    }

    #[test]
    fn forwarding_horizon_is_capped_to_the_scenario_window() {
        let params = StudyParams::for_profile(ExperimentProfile::Paper);
        // Paper datasets sit exactly at the cap: 7200 s over a 10800 s
        // window — unchanged (preset byte parity depends on this).
        assert_eq!(params.forwarding_workload(98, 10800.0).generation_horizon, 7200.0);
        // A short-window scenario must not receive undeliverable messages
        // generated after its window ends.
        assert_eq!(params.forwarding_workload(1000, 3600.0).generation_horizon, 2400.0);
        // No explicit horizon: two thirds of the window.
        let adaptive = StudyParams { workload_horizon: None, ..params };
        assert_eq!(adaptive.forwarding_workload(10, 900.0).generation_horizon, 600.0);
    }

    #[test]
    fn model_study_needs_no_scenario() {
        let spec = StudySpec::new(StudyId::Model, vec![], quick_params());
        let report = run_study(&spec.plan().unwrap());
        assert_eq!(report.doc.sections.len(), 1);
        assert_eq!(report.doc.sections[0].view, "model-validation");
        assert!(report.render().contains("model validation"));
    }

    #[test]
    fn dataset_scenarios_reproduce_the_experiment_driver_output() {
        // The pipeline's explosion section for a paper dataset must equal
        // the direct driver's rendering — the property the figure presets
        // and their golden tests build on.
        let profile = ExperimentProfile::Quick;
        let mut params = StudyParams::for_profile(profile).with_threads(2);
        params.enumeration = EnumerationConfig::quick(40);
        params.explosion_threshold = 40;
        params.enumeration_messages = 10;
        let scenario = StudyScenario::dataset(DatasetId::Conext06Morning, profile);
        let spec = StudySpec::new(StudyId::Explosion, vec![scenario], params.clone())
            .with_views(vec![StudyView::ExplosionCdfs]);
        let report = run_study(&spec.plan().unwrap());

        let trace = profile.dataset(DatasetId::Conext06Morning).generate();
        let generator = MessageGenerator::new(MessageWorkloadConfig {
            nodes: trace.node_count(),
            generation_horizon: (trace.window().duration() * 2.0 / 3.0).max(1.0),
            mean_interarrival: 4.0,
            seed: 0xEC0,
        });
        let messages = generator.uniform_messages(10);
        let direct = run_explosion_study_on(
            DatasetId::Conext06Morning,
            &trace,
            &messages,
            params.enumeration.clone(),
            40,
            2,
        );
        assert_eq!(report.render(), format!("{}\n", crate::report::render_explosion_cdfs(&direct)));
    }

    #[test]
    fn parallel_run_loop_matches_the_serial_order() {
        // Three (scenario × seed) cells through the work-queue path (threads
        // 4 → 3 workers) must produce the identical document as the serial
        // path (threads 1).
        let scenarios = vec![dense_scenario(1), dense_scenario(2)];
        let serial_spec =
            StudySpec::new(StudyId::Activity, scenarios.clone(), quick_params().with_threads(1))
                .with_extra_seeds(vec![9]);
        let parallel_spec =
            StudySpec::new(StudyId::Activity, scenarios, quick_params().with_threads(4))
                .with_extra_seeds(vec![9]);
        let serial = run_study(&serial_spec.plan().unwrap());
        let parallel = run_study(&parallel_spec.plan().unwrap());
        assert_eq!(serial.doc, parallel.doc);
        assert_eq!(serial.doc.sections.len(), 4 * 2);
    }

    #[test]
    fn warm_store_serves_bit_identical_reports_for_every_study() {
        // The caching contract: for each of the six studies, a warm run
        // (shared store), a cold run (fresh store) and an uncached run
        // (--no-cache semantics) produce the identical typed document —
        // and therefore identical rendered bytes.
        let params = quick_params();
        let store = ArtifactStore::in_memory();
        for study in StudyId::all() {
            let scenarios = if study == StudyId::Model { vec![] } else { vec![dense_scenario(11)] };
            let spec = StudySpec::new(study, scenarios, params.clone());
            let plan = spec.plan().unwrap();
            let cold = run_study_with(&plan, &store).unwrap();
            let warm = run_study_with(&plan, &store).unwrap();
            assert_eq!(cold.doc, warm.doc, "{study}: warm != cold");
            assert_eq!(cold.render(), warm.render(), "{study}: rendered bytes differ");
            let uncached = run_study_with(&plan, &ArtifactStore::disabled()).unwrap();
            assert_eq!(cold.doc, uncached.doc, "{study}: uncached != cold");
            if study != StudyId::Model {
                assert!(
                    cold.cache.iter().all(|c| c.source == CacheSource::Built),
                    "{study}: first run must compute"
                );
                assert!(
                    warm.cache.iter().all(|c| c.source == CacheSource::Memory),
                    "{study}: second run must be served from memory"
                );
            }
        }
    }

    #[test]
    fn disk_tier_serves_results_across_store_instances() {
        let dir = std::env::temp_dir().join(format!("psn-study-disk-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = StudySpec::new(StudyId::Forwarding, vec![dense_scenario(4)], quick_params())
            .with_views(vec![StudyView::DelayVsSuccess]);
        let plan = spec.plan().unwrap();

        let cold = run_study_with(&plan, &ArtifactStore::with_disk(&dir).unwrap()).unwrap();
        assert!(cold.cache.iter().all(|c| c.source == CacheSource::Built));

        // A fresh store over the same directory — a restarted process —
        // serves the whole run from disk, bit-identically.
        let fresh = ArtifactStore::with_disk(&dir).unwrap();
        let warm = run_study_with(&plan, &fresh).unwrap();
        assert!(warm.cache.iter().all(|c| c.source == CacheSource::Disk), "{:?}", warm.cache);
        assert_eq!(cold.doc, warm.doc);
        assert_eq!(cold.render(), warm.render());
        assert_eq!(
            fresh.stats().total_builds(),
            0,
            "a fully warm disk cache runs no engine at all: {:?}",
            fresh.stats()
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn thread_counts_do_not_split_cache_keys() {
        // `threads` never changes results, so a run at a different thread
        // count must hit the same cached result.
        let store = ArtifactStore::in_memory();
        let serial = StudySpec::new(
            StudyId::Activity,
            vec![dense_scenario(7)],
            quick_params().with_threads(1),
        );
        let parallel = StudySpec::new(
            StudyId::Activity,
            vec![dense_scenario(7)],
            quick_params().with_threads(4),
        );
        let cold = run_study_with(&serial.plan().unwrap(), &store).unwrap();
        let warm = run_study_with(&parallel.plan().unwrap(), &store).unwrap();
        assert!(warm.cache.iter().all(|c| c.source == CacheSource::Memory), "{:?}", warm.cache);
        assert_eq!(cold.doc, warm.doc);
    }

    #[test]
    fn streaming_studies_are_byte_identical_for_every_study() {
        // The stream-native contract: for each of the six studies, a
        // `--streaming` run (scenario event stream → bounded-window graph +
        // folded summary, no materialized trace) produces the identical
        // typed document — and therefore identical rendered bytes — as the
        // materialized run. Fresh stores on both sides so neither run can
        // be served from the other's cache.
        let materialized = quick_params();
        let streaming = quick_params().with_streaming_window(Some(16));
        for study in StudyId::all() {
            if study == StudyId::Model {
                continue; // no scenario, nothing to stream
            }
            let scenarios = vec![dense_scenario(11)];
            let base_plan =
                StudySpec::new(study, scenarios.clone(), materialized.clone()).plan().unwrap();
            let stream_plan = StudySpec::new(study, scenarios, streaming.clone()).plan().unwrap();
            let base = run_study_with(&base_plan, &ArtifactStore::in_memory()).unwrap();
            let streamed = run_study_with(&stream_plan, &ArtifactStore::in_memory()).unwrap();
            assert_eq!(base.doc, streamed.doc, "{study}: streaming changed the document");
            assert_eq!(base.render(), streamed.render(), "{study}: rendered bytes differ");
        }
    }

    #[test]
    fn streaming_study_never_materializes_a_trace() {
        // The point of the stream-native path: a `--streaming` study folds
        // the scenario's event stream directly and must never build (or
        // even request) the materialized ContactTrace artifact.
        use psn_artifact::ArtifactKind;
        for study in StudyId::all() {
            if study == StudyId::Model {
                continue;
            }
            let store = ArtifactStore::in_memory();
            let spec = StudySpec::new(
                study,
                vec![dense_scenario(11)],
                quick_params().with_streaming_window(Some(16)),
            );
            let report = run_study_with(&spec.plan().unwrap(), &store).unwrap();
            assert!(!report.doc.sections.is_empty(), "{study}: no sections");
            let stats = store.stats();
            assert_eq!(
                stats.builds_of(ArtifactKind::Trace),
                0,
                "{study}: streaming run materialized a trace: {stats:?}"
            );
            // Graphs and timelines are built per-run in streaming mode (the
            // bounded-window representation is not cacheable), never stored.
            assert_eq!(stats.builds_of(ArtifactKind::Graph), 0, "{study}: {stats:?}");
            assert_eq!(stats.builds_of(ArtifactKind::Timeline), 0, "{study}: {stats:?}");
        }
    }

    #[test]
    fn every_study_round_trips_through_json() {
        // serialize → parse → compare, for each of the six studies at tiny
        // scale: the JSON schema carries the full typed model.
        let params = quick_params();
        for study in StudyId::all() {
            let scenarios = if study == StudyId::Model { vec![] } else { vec![dense_scenario(11)] };
            let spec = StudySpec::new(study, scenarios, params.clone());
            let report = run_study(&spec.plan().unwrap());
            assert!(!report.doc.sections.is_empty(), "{study}: no sections");
            let json = JsonRenderer.render_json(&report.doc);
            let parsed = JsonRenderer.parse(&json).unwrap_or_else(|e| {
                panic!("{study}: emitted json must parse: {e}");
            });
            assert_eq!(parsed, report.doc, "{study}: json round trip");
        }
    }
}
