//! Plain-text / CSV rendering of experiment results.
//!
//! The original figures are MATLAB plots; this reproduction emits the data
//! series behind each figure as readable text (and CSV-style rows) so the
//! regeneration binaries can print them and EXPERIMENTS.md can quote them.
//! Every renderer returns a `String` so it is equally usable from binaries,
//! tests and documentation examples.

use std::fmt::Write as _;

use psn_forwarding::PairType;
use psn_stats::Ecdf;

use crate::experiments::activity::ActivityReport;
use crate::experiments::explosion::ExplosionStudy;
use crate::experiments::forwarding::ForwardingStudy;
use crate::experiments::hop_rates::HopRateStudy;
use crate::experiments::model::ModelValidation;
use crate::experiments::paths_taken::PathsTakenCase;

/// Renders an ECDF as `value,cumulative_probability` rows, down-sampled to
/// at most `max_points` points.
pub fn render_cdf(name: &str, cdf: &Ecdf, max_points: usize) -> String {
    let points = cdf.step_points();
    let step = (points.len() / max_points.max(1)).max(1);
    let mut out = format!("# {name}: {} samples\n", cdf.len());
    out.push_str("value,probability\n");
    for (i, (x, p)) in points.iter().enumerate() {
        if i % step == 0 || i + 1 == points.len() {
            let _ = writeln!(out, "{x:.3},{p:.4}");
        }
    }
    out
}

/// Renders the Fig. 1 contact time series of one dataset.
pub fn render_activity(report: &ActivityReport) -> String {
    let mut out = format!(
        "# Figure 1 — total contacts per minute, {} (cv={:.3}, tail ratio={:.3})\n",
        report.scenario, report.coefficient_of_variation, report.tail_ratio
    );
    out.push_str("minute,contacts\n");
    for (t, c) in report.per_minute.series() {
        let _ = writeln!(out, "{:.0},{}", t / 60.0, c);
    }
    out
}

/// Renders the Fig. 7 per-node contact-count CDF of one dataset.
pub fn render_contact_cdf(report: &ActivityReport) -> String {
    let mut out = format!(
        "# Figure 7 — per-node contact count CDF, {} (KS distance to uniform = {:.3})\n",
        report.scenario, report.uniformity_ks
    );
    out.push_str(&render_cdf("contact counts", &report.contact_count_cdf, 120));
    out
}

/// Renders the Fig. 4 CDFs (optimal path duration, time to explosion).
pub fn render_explosion_cdfs(study: &ExplosionStudy) -> String {
    let mut out = format!(
        "# Figure 4 — {} ({} messages, threshold {} paths)\n",
        study.scenario,
        study.summary.len(),
        study.explosion_threshold
    );
    match study.summary.optimal_duration_cdf() {
        Some(cdf) => out.push_str(&render_cdf("optimal path duration (s)", &cdf, 100)),
        None => out.push_str("# no message was delivered\n"),
    }
    match study.summary.time_to_explosion_cdf() {
        Some(cdf) => out.push_str(&render_cdf("time to explosion (s)", &cdf, 100)),
        None => out.push_str("# no message reached the explosion threshold\n"),
    }
    if let Some(f) = study.fraction_optimal_duration_above(1000.0) {
        let _ = writeln!(out, "# fraction with optimal duration > 1000 s: {f:.3}");
    }
    if let Some(f) = study.fraction_te_below(150.0) {
        let _ = writeln!(out, "# fraction with TE <= 150 s: {f:.3}");
    }
    out
}

/// Renders the Fig. 5 scatter of optimal duration vs time to explosion.
pub fn render_explosion_scatter(study: &ExplosionStudy) -> String {
    let mut out =
        format!("# Figure 5 — optimal path duration vs time to explosion, {}\n", study.scenario);
    if let Some(r) = study.t1_te_correlation {
        let _ = writeln!(out, "# Pearson correlation: {r:.3}");
    }
    out.push_str("optimal_duration_s,time_to_explosion_s\n");
    for (t1, te) in study.summary.scatter_points() {
        let _ = writeln!(out, "{t1:.1},{te:.1}");
    }
    out
}

/// Renders the Fig. 6 growth histogram for slow-explosion messages.
pub fn render_explosion_growth(study: &ExplosionStudy) -> String {
    let mut out = format!(
        "# Figure 6 — path arrivals since T1 for messages with TE >= {} s, {}\n",
        study.slow_te_cutoff, study.scenario
    );
    match &study.slow_growth_histogram {
        Some(h) => {
            out.push_str("seconds_since_T1,paths\n");
            for (x, c) in h.series() {
                let _ = writeln!(out, "{x:.0},{c:.0}");
            }
        }
        None => out.push_str("# no message had a slow explosion at this scale\n"),
    }
    out
}

/// Renders the Fig. 8 pair-type scatter panels.
pub fn render_pairtype_scatter(study: &ExplosionStudy) -> String {
    let mut out = format!(
        "# Figure 8 — optimal duration vs time to explosion by pair type, {}\n",
        study.scenario
    );
    for panel in &study.by_pair_type {
        let _ = writeln!(out, "## {} ({} messages)", panel.pair_type, panel.points.len());
        out.push_str("optimal_duration_s,time_to_explosion_s\n");
        for (t1, te) in &panel.points {
            let _ = writeln!(out, "{t1:.1},{te:.1}");
        }
    }
    out
}

/// Renders the Fig. 9 success-rate vs average-delay table for one dataset.
pub fn render_delay_vs_success(study: &ForwardingStudy) -> String {
    let mut out = format!(
        "# Figure 9 — average delay vs success rate, {} ({} messages x {} runs)\n",
        study.scenario, study.messages_per_run, study.runs
    );
    out.push_str("algorithm,success_rate,average_delay_s\n");
    for (kind, success, delay) in study.delay_vs_success() {
        let delay = delay.map(|d| format!("{d:.1}")).unwrap_or_else(|| "-".to_string());
        let _ = writeln!(out, "{kind},{success:.3},{delay}");
    }
    let _ = writeln!(
        out,
        "# success-rate spread across non-epidemic algorithms: {:.3}",
        study.non_epidemic_success_spread()
    );
    out
}

/// Renders the Fig. 10 delay distributions for one dataset.
pub fn render_delay_distributions(study: &ForwardingStudy) -> String {
    let mut out = format!("# Figure 10 — delay distributions, {}\n", study.scenario);
    for algo in &study.algorithms {
        match algo.metrics.delay_cdf() {
            Some(cdf) => {
                let _ = writeln!(out, "## {}", algo.kind);
                out.push_str(&render_cdf("delay (s)", &cdf, 60));
            }
            None => {
                let _ = writeln!(out, "## {} — no deliveries", algo.kind);
            }
        }
    }
    out
}

/// Renders the Fig. 11 cumulative reception series (per algorithm).
pub fn render_reception_times(study: &ForwardingStudy) -> String {
    let mut out = format!("# Figure 11 — cumulative message receptions, {}\n", study.scenario);
    for algo in &study.algorithms {
        let _ = writeln!(out, "## {}", algo.kind);
        out.push_str("minute,cumulative_deliveries\n");
        for (t, c) in algo.reception_series.cumulative() {
            let _ = writeln!(out, "{:.0},{c:.0}", t / 60.0);
        }
    }
    out
}

/// Renders one Fig. 12 case (path bursts + algorithm arrivals).
pub fn render_paths_taken(case: &PathsTakenCase) -> String {
    let mut out =
        format!("# Figure 12 — paths taken by forwarding algorithms, message {}\n", case.message);
    out.push_str("seconds_since_T1,arriving_paths\n");
    for (t, c) in &case.arrival_bursts {
        let _ = writeln!(out, "{t:.0},{c}");
    }
    out.push_str("algorithm,arrival_offset_s\n");
    for (kind, arrival) in &case.algorithm_arrivals {
        let arrival = arrival.map(|t| format!("{t:.0}")).unwrap_or_else(|| "-".to_string());
        let _ = writeln!(out, "{kind},{arrival}");
    }
    out
}

/// Renders the Fig. 13 pair-type performance breakdown for one dataset.
pub fn render_pairtype_performance(study: &ForwardingStudy) -> String {
    let mut out =
        format!("# Figure 13 — performance by source-destination pair type, {}\n", study.scenario);
    out.push_str("algorithm,pair_type,success_rate,average_delay_s\n");
    for algo in &study.algorithms {
        for pair_type in PairType::all() {
            let metrics = algo.by_pair_type.get(pair_type);
            let delay =
                metrics.average_delay.map(|d| format!("{d:.1}")).unwrap_or_else(|| "-".to_string());
            let _ =
                writeln!(out, "{},{},{:.3},{}", algo.kind, pair_type, metrics.success_rate, delay);
        }
    }
    out
}

/// Renders the Fig. 14 per-hop mean rates with confidence intervals.
pub fn render_hop_rates(study: &HopRateStudy) -> String {
    let mut out = format!("# Figure 14 — mean contact rate per hop ({} paths)\n", study.paths);
    out.push_str("hop,mean_rate,ci_low,ci_high\n");
    for (hop, mean, ci) in &study.mean_rate_per_hop {
        match ci {
            Some(ci) => {
                let _ = writeln!(out, "{hop},{mean:.5},{:.5},{:.5}", ci.low(), ci.high());
            }
            None => {
                let _ = writeln!(out, "{hop},{mean:.5},-,-");
            }
        }
    }
    out
}

/// Renders the Fig. 15 per-hop rate-ratio box plots.
pub fn render_rate_ratios(study: &HopRateStudy) -> String {
    let mut out = format!(
        "# Figure 15 — contact-rate ratios between consecutive hops ({} paths)\n",
        study.paths
    );
    for (label, bp) in &study.rate_ratio_per_hop {
        let _ = writeln!(out, "{label}: {}", bp.render_line());
    }
    out
}

/// Renders the §5.1 model-validation summary.
pub fn render_model_validation(validation: &ModelValidation) -> String {
    let mut out = String::from("# Section 5.1 — analytic model validation\n");
    out.push_str("nodes,lambda,horizon_s,closed_form_mean,simulated_mean,ode_mean,density_error\n");
    for a in &validation.agreements {
        let _ = writeln!(
            out,
            "{},{},{:.0},{:.4},{:.4},{:.4},{:.4}",
            a.nodes,
            a.lambda,
            a.horizon,
            a.closed_form_mean,
            a.simulated_mean,
            a.ode_mean,
            a.density_error
        );
    }
    out.push_str("# Section 5.2 — two-class (in/out) model predictions\n");
    out.push_str("pair_class,expected_T1_s,expected_TE_s\n");
    for p in &validation.two_class {
        let _ = writeln!(out, "{},{:.0},{:.0}", p.class, p.expected_t1, p.expected_te);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentProfile;
    use crate::experiments::activity::{activity_report, run_activity_study};
    use psn_trace::DatasetId;

    #[test]
    fn cdf_rendering_is_csv_like() {
        let cdf = Ecdf::new(&[1.0, 2.0, 2.0, 5.0]).unwrap();
        let text = render_cdf("test", &cdf, 10);
        assert!(text.contains("value,probability"));
        assert!(text.contains("5.000,1.0000"));
        assert!(text.starts_with("# test: 4 samples"));
    }

    #[test]
    fn activity_rendering_contains_every_minute() {
        let reports = run_activity_study(ExperimentProfile::Quick);
        let text = render_activity(&reports[0]);
        assert!(text.contains("Figure 1"));
        assert!(text.contains("minute,contacts"));
        let lines = text.lines().count();
        // Header lines + 60 one-minute bins for the quick one-hour window.
        assert!(lines >= 60, "only {lines} lines");
        let cdf_text = render_contact_cdf(&reports[0]);
        assert!(cdf_text.contains("Figure 7"));
    }

    #[test]
    fn activity_report_for_custom_trace() {
        let trace = ExperimentProfile::Quick.dataset(DatasetId::Conext06Morning).generate();
        let report = activity_report(DatasetId::Conext06Morning, &trace);
        let text = render_activity(&report);
        assert!(text.contains("Conext06 9-12"));
    }
}
