//! Quickstart: generate a synthetic conference trace, enumerate forwarding
//! paths for a handful of messages, and print their path-explosion profiles.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use psn::prelude::*;

fn main() {
    // 1. A synthetic stand-in for the Infocom'06 morning trace, at reduced
    //    scale so the example finishes in a few seconds.
    let dataset = SyntheticDataset::quick_config(DatasetId::Infocom06Morning);
    let trace = dataset.generate();
    println!(
        "trace `{}`: {} nodes, {} contacts over {:.0} minutes",
        trace.name(),
        trace.node_count(),
        trace.contact_count(),
        trace.window().duration() / 60.0
    );

    // 2. Per-node contact rates and the in/out split of the paper's §5.2.
    let rates = ContactRates::from_trace(&trace);
    println!(
        "median contact rate: {:.4} contacts/s ({} 'in' nodes, {} 'out' nodes)",
        rates.median_rate(),
        rates.in_nodes().len(),
        rates.out_nodes().len()
    );

    // 3. Build the space-time graph (Δ = 10 s) and enumerate valid paths for
    //    a few random messages.
    let graph = SpaceTimeGraph::build_default(&trace);
    let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(100));
    let generator = MessageGenerator::new(MessageWorkloadConfig {
        nodes: trace.node_count(),
        generation_horizon: trace.window().duration() * 2.0 / 3.0,
        mean_interarrival: 4.0,
        seed: 1,
    });

    println!("\nmessage                optimal-duration  time-to-explosion  paths");
    for message in generator.uniform_messages(8) {
        let result = enumerator.enumerate(&message);
        let profile = ExplosionProfile::with_threshold(&result, 100);
        let t1 = profile
            .optimal_duration
            .map(|t| format!("{t:>8.0} s"))
            .unwrap_or_else(|| "   never".to_string());
        let te = profile
            .time_to_explosion
            .map(|t| format!("{t:>8.0} s"))
            .unwrap_or_else(|| "       -".to_string());
        println!("{:<22} {}        {}        {}", message.to_string(), t1, te, profile.total_paths);
    }

    // 4. The headline comparison: epidemic (optimal) delivery vs. a simple
    //    practical algorithm on the same messages.
    let simulator = Simulator::with_default_config(&trace);
    let messages = generator.uniform_messages(40);
    let algorithms = standard_algorithms();
    println!("\nalgorithm              success-rate   avg-delay");
    for (kind, algorithm) in &algorithms {
        let result = simulator.run(algorithm.as_ref(), &messages);
        let metrics = AlgorithmMetrics::from_result(&result);
        println!(
            "{:<22} {:>10.2}   {}",
            kind.to_string(),
            metrics.success_rate,
            metrics
                .average_delay
                .map(|d| format!("{d:>7.0} s"))
                .unwrap_or_else(|| "      -".to_string())
        );
    }
}
