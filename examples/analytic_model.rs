//! The homogeneous path-explosion model (paper §5.1) from three angles.
//!
//! Compares the stochastic jump process, the truncated ODE (Kurtz limit) and
//! the closed-form mean `E[S(t)] = E[S(0)]·e^{λt}`, then prints the
//! two-class (in/out) model's predictions for the four pair types (§5.2).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example analytic_model
//! ```

use psn::experiments::model::run_model_validation;
use psn::report;
use psn_analytic::{mean_paths, variance_paths};

fn main() {
    println!(
        "validating the homogeneous path-count model (this runs a stochastic simulation)...\n"
    );
    let validation = run_model_validation(40);
    println!("{}", report::render_model_validation(&validation));

    // The closed forms on their own: how fast does the expected path count
    // grow for conference-like contact rates?
    println!("closed-form growth for a 98-node population:");
    println!("lambda_per_s,t_s,mean_paths_per_node,std_dev");
    for &lambda in &[0.005_f64, 0.01, 0.03] {
        for &t in &[100.0_f64, 300.0, 600.0] {
            let mean = mean_paths(1.0 / 98.0, lambda, t);
            let var = variance_paths(1.0 / 98.0, 0.0, lambda, t);
            println!("{lambda},{t:.0},{mean:.4},{:.4}", var.sqrt());
        }
    }
    println!(
        "\nthe take-away: path counts grow like e^(lambda*t), so a high-rate core of the\n\
         population explodes within minutes while low-rate nodes lag — exactly the\n\
         structure the trace experiments (Figs. 4-8) show."
    );
}
