//! Forwarding-algorithm comparison: reproduce the paper's §6 experiment on
//! one synthetic dataset.
//!
//! Runs all six forwarding algorithms (Epidemic, FRESH, Greedy, Greedy
//! Total, Greedy Online, Dynamic Programming) over the same Poisson message
//! workload and prints the Fig. 9 summary (delay vs success rate), the
//! Fig. 13 pair-type breakdown, and the "similar performance" observation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example forwarding_comparison
//! ```

use psn::experiments::forwarding::run_forwarding_study;
use psn::prelude::*;
use psn::report;

fn main() {
    let profile = ExperimentProfile::Quick;
    let dataset = DatasetId::Conext06Morning;
    println!("running the forwarding study on {dataset} (quick profile)...\n");

    let study = run_forwarding_study(profile, dataset, 0);

    println!("{} messages per run, {} runs\n", study.messages_per_run, study.runs);
    println!("algorithm              success-rate   avg-delay");
    for (kind, success, delay) in study.delay_vs_success() {
        println!(
            "{:<22} {:>10.2}   {}",
            kind.to_string(),
            success,
            delay.map(|d| format!("{d:>7.0} s")).unwrap_or_else(|| "      -".to_string())
        );
    }
    println!(
        "\nsuccess-rate spread across the five non-epidemic algorithms: {:.3}",
        study.non_epidemic_success_spread()
    );
    println!(
        "(the paper's observation: algorithms with very different strategies perform similarly)"
    );

    println!("\n{}", report::render_pairtype_performance(&study));
}
