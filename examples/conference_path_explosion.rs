//! Path explosion at a conference: reproduce the paper's §4–§5 story on one
//! synthetic dataset.
//!
//! The example generates a conference trace, runs the path-explosion study
//! (Figs. 4–8 at reduced scale), and prints the key observations: optimal
//! path durations are often long, times to explosion are short, the two are
//! essentially uncorrelated, and the structure is explained by the
//! source/destination contact-rate classes.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example conference_path_explosion
//! ```

use psn::experiments::explosion::run_explosion_study;
use psn::prelude::*;
use psn::report;

fn main() {
    let profile = ExperimentProfile::Quick;
    let dataset = DatasetId::Infocom06Morning;
    println!("running the path-explosion study on {dataset} (quick profile)...\n");

    let study = run_explosion_study(profile, dataset, 4);

    println!(
        "{} messages analysed, {:.0}% delivered, {:.0}% reached the explosion threshold ({} paths)",
        study.summary.len(),
        study.summary.delivery_fraction() * 100.0,
        study.summary.explosion_fraction() * 100.0,
        study.explosion_threshold
    );

    if let Some(cdf) = study.summary.optimal_duration_cdf() {
        println!(
            "optimal path duration: median {:.0} s, 90th percentile {:.0} s",
            cdf.quantile(0.5).unwrap(),
            cdf.quantile(0.9).unwrap()
        );
    }
    if let Some(cdf) = study.summary.time_to_explosion_cdf() {
        println!(
            "time to explosion:     median {:.0} s, 90th percentile {:.0} s",
            cdf.quantile(0.5).unwrap(),
            cdf.quantile(0.9).unwrap()
        );
    }
    if let Some(r) = study.t1_te_correlation {
        println!(
            "Pearson correlation between T1 and TE: {r:.3} (the paper finds no clear relationship)"
        );
    }

    println!("\nper pair type (Fig. 8):");
    for panel in &study.by_pair_type {
        if panel.points.is_empty() {
            println!("  {:<8} no exploded messages", panel.pair_type.to_string());
            continue;
        }
        let mean_t1: f64 =
            panel.points.iter().map(|p| p.0).sum::<f64>() / panel.points.len() as f64;
        let mean_te: f64 =
            panel.points.iter().map(|p| p.1).sum::<f64>() / panel.points.len() as f64;
        println!(
            "  {:<8} {:>3} messages   mean T1 {:>6.0} s   mean TE {:>6.0} s",
            panel.pair_type.to_string(),
            panel.points.len(),
            mean_t1,
            mean_te
        );
    }

    println!("\n{}", report::render_explosion_cdfs(&study));
}
