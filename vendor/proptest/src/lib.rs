//! Offline stand-in for the subset of `proptest` the workspace tests use.
//!
//! crates.io is unreachable in this build environment, so this vendored
//! crate supplies the `proptest! { #[test] fn name(x in strategy, ..) }`
//! macro, `prop_assert!` / `prop_assert_eq!`, range and tuple strategies,
//! and `proptest::collection::vec`. Cases are generated deterministically
//! (seed derived from the test name) so failures reproduce; shrinking is
//! not implemented — the failing inputs are printed instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

/// Number of random cases per property, overridable via `PROPTEST_CASES`.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64)
}

/// Derives a per-test RNG from the property name, deterministically.
pub fn rng_for(test_name: &str, case: u32) -> StdRng {
    use rand::SeedableRng;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ ((case as u64) << 32))
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;
        /// Draws one value.
        fn sample_value(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample_value(rng), self.1.sample_value(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample_value(rng), self.1.sample_value(rng), self.2.sample_value(rng))
        }
    }

    /// A constant-value strategy, mirroring `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn sample_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a vector strategy, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "vec strategy needs a non-empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// Everything the `use proptest::prelude::*` sites expect.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a property-level condition; formatted like `assert!` (shrinkless
/// stand-in: failures abort the case immediately with the message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts property-level equality, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// The `proptest!` test-declaration macro: each contained function is run
/// for [`cases`] deterministic random cases; the sampled arguments are
/// printed on panic so failures reproduce.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:pat in $strategy:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(unused_mut)]
        fn $name() {
            for case in 0..$crate::cases() {
                let mut rng = $crate::rng_for(stringify!($name), case);
                let mut inputs = String::new();
                $(
                    let sampled =
                        $crate::strategy::Strategy::sample_value(&($strategy), &mut rng);
                    inputs.push_str(&format!("{} = {:?}; ", stringify!($arg), &sampled));
                    let $arg = sampled;
                )+
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = result {
                    eprintln!("proptest case {case} failed with inputs: {inputs}");
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    proptest! {
        #[test]
        fn ranges_and_vecs_sample_in_bounds(
            x in 0u32..10,
            y in -1.0f64..1.0,
            xs in crate::collection::vec(0.0f64..5.0, 1..20),
            pair in (0usize..4, 1.0f64..2.0),
        ) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|v| (0.0..5.0).contains(v)));
            prop_assert!(pair.0 < 4 && (1.0..2.0).contains(&pair.1));
        }

        #[test]
        fn mut_bindings_are_allowed(mut xs in crate::collection::vec(-1e3f64..1e3, 1..50)) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn cases_default() {
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(super::cases(), 64);
        }
    }
}
