//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! the workspace vendors a minimal derive that emits marker-trait impls for
//! the [`serde`] facade crate next door. No serialization logic is generated
//! — nothing in the workspace serializes through serde at runtime; the
//! derives exist so the public types advertise the trait bounds downstream
//! users expect.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the type a `#[derive(..)]` is attached to: the
/// identifier following the first `struct` or `enum` keyword.
fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_keyword = false;
    for tree in input {
        if let TokenTree::Ident(ident) = tree {
            let text = ident.to_string();
            if saw_keyword {
                return Some(text);
            }
            if text == "struct" || text == "enum" {
                saw_keyword = true;
            }
        }
    }
    None
}

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input).expect("derive target must be a struct or enum");
    format!("impl ::serde::Serialize for {name} {{}}").parse().unwrap()
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input).expect("derive target must be a struct or enum");
    format!("impl ::serde::Deserialize for {name} {{}}").parse().unwrap()
}
