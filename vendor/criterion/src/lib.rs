//! Offline stand-in for the subset of the `criterion` API the workspace
//! benches use.
//!
//! crates.io is unreachable in this build environment, so the bench targets
//! link against this vendored harness instead. It keeps the familiar macro
//! surface (`criterion_group!` / `criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `Bencher`, `black_box`) and measures wall-clock time
//! with `std::time::Instant`:
//!
//! * each `bench_function` collects `sample_size` samples (default 10);
//! * each sample runs the measured routine for at least
//!   [`TARGET_SAMPLE_TIME`] (3 ms under `--quick`, 30 ms otherwise) and
//!   records the mean per-iteration time;
//! * results are printed criterion-style (`group/bench  time: [min median
//!   max]`) and appended as JSON lines to
//!   `target/psn-bench/<bench-binary>.jsonl` for archival (see
//!   `BENCH_*.json` at the repo root).
//!
//! Unknown CLI arguments (cargo passes `--bench`; users may pass filters)
//! are treated as substring filters on the full `group/bench` id, matching
//! criterion's behaviour.

#![forbid(unsafe_code)]

use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Minimum measured time per sample in normal mode.
pub const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(30);
/// Minimum measured time per sample under `--quick`.
pub const QUICK_SAMPLE_TIME: Duration = Duration::from_millis(3);

/// Opaque value barrier, re-exported like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Batch sizing hint, accepted for API compatibility (the vendored harness
/// re-runs setup per batch regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    filters: Vec<String>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filters = Vec::new();
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--test" | "--nocapture" => {}
                "--quick" => quick = true,
                a if a.starts_with("--") => {}
                a => filters.push(a.to_string()),
            }
        }
        if std::env::var("PSN_BENCH_QUICK").is_ok() {
            quick = true;
        }
        Self { filters, quick }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    fn sample_time(&self) -> Duration {
        if self.quick {
            QUICK_SAMPLE_TIME
        } else {
            TARGET_SAMPLE_TIME
        }
    }
}

/// A group of benchmarks sharing a name prefix and sampling configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] or [`Bencher::iter_batched`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        if !self.criterion.matches(&id) {
            return self;
        }
        let samples = if self.criterion.quick { self.sample_size.min(3) } else { self.sample_size };
        let mut bencher = Bencher { sample_time: self.criterion.sample_time(), nanos: Vec::new() };
        for _ in 0..samples {
            f(&mut bencher);
        }
        report(&id, &bencher.nanos);
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(&mut self) {}
}

/// Per-benchmark measurement driver, mirroring `criterion::Bencher`.
pub struct Bencher {
    sample_time: Duration,
    nanos: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`, called in a loop until the sample time target is
    /// reached; records the mean per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Loop in growing batches until the sample-time target is reached;
        // no separate warmup call, so multi-second routines cost one run.
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        let mut batch: u64 = 1;
        while elapsed < self.sample_time {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += start.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.nanos.push(elapsed.as_nanos() as f64 / iters as f64);
    }

    /// Measures `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        while elapsed < self.sample_time {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
            iters += 1;
        }
        self.nanos.push(elapsed.as_nanos() as f64 / iters as f64);
    }
}

fn format_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(id: &str, nanos: &[f64]) {
    let mut sorted = nanos.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let min = sorted.first().copied().unwrap_or(0.0);
    let max = sorted.last().copied().unwrap_or(0.0);
    let median = if sorted.is_empty() {
        0.0
    } else {
        let mid = sorted.len() / 2;
        if sorted.len().is_multiple_of(2) {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        } else {
            sorted[mid]
        }
    };
    println!(
        "{id:<55} time:   [{} {} {}]",
        format_nanos(min),
        format_nanos(median),
        format_nanos(max)
    );
    append_jsonl(id, min, median, max);
}

fn append_jsonl(id: &str, min: f64, median: f64, max: f64) {
    let Ok(exe) = std::env::current_exe() else { return };
    let stem = exe
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "bench".to_string());
    // target/<profile>/deps/<bench>-<hash> -> target/psn-bench/<bench>.jsonl
    let Some(target_dir) = exe.ancestors().nth(3) else { return };
    let dir = target_dir.join("psn-bench");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let stem = stem.rsplit_once('-').map(|(name, _)| name.to_string()).unwrap_or(stem);
    let line = format!(
        "{{\"bench\":\"{id}\",\"min_ns\":{min:.1},\"median_ns\":{median:.1},\"max_ns\":{max:.1}}}\n"
    );
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(format!("{stem}.jsonl")))
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut criterion = Criterion { filters: Vec::new(), quick: true };
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(2).bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn filters_skip_non_matching() {
        let mut criterion = Criterion { filters: vec!["only_this".to_string()], quick: true };
        let mut group = criterion.benchmark_group("g");
        // Would run forever if not filtered out (sample time never reached
        // by a panicking routine); filtering means the closure is not called.
        group.bench_function("other", |_b| panic!("should not run"));
        group.finish();
    }

    #[test]
    fn nanos_formatting_scales() {
        assert!(format_nanos(12.0).ends_with("ns"));
        assert!(format_nanos(12_000.0).ends_with("µs"));
        assert!(format_nanos(12_000_000.0).ends_with("ms"));
        assert!(format_nanos(2_000_000_000.0).ends_with('s'));
    }
}
