//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! supplies the two marker traits the workspace derives everywhere, plus the
//! derive-macro re-exports (`serde::Serialize` names both the trait and the
//! derive, exactly like the real facade with the `derive` feature).
//!
//! Nothing in the workspace performs serde-based (de)serialization at
//! runtime — JSON emitted by the figure binaries is hand-rendered — so the
//! traits carry no methods. Swapping in the real serde later only requires
//! deleting `vendor/` and pointing the workspace at the registry.

#![forbid(unsafe_code)]

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
