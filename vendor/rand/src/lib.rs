//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! deterministic PRNG with the same API shape the code was written against:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and float
//! ranges, and [`rngs::StdRng`]. The generator is xoshiro256++ seeded via
//! splitmix64 — high-quality for simulation workloads, though the exact
//! stream differs from upstream `StdRng` (ChaCha12); all workspace tests
//! assert distributional properties, not specific draws.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire-style rejection keeps the draw unbiased.
                loop {
                    let x = rng.next_u64();
                    let limit = u64::MAX - u64::MAX % span;
                    if x < limit {
                        return self.start + (x % span) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample(rng)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let wide = (self.start as f64..self.end as f64).sample(rng);
        wide as f32
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen_range(0.0..1.0f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard RNG: xoshiro256++ seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let state =
                [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)];
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn integer_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_mean_is_near_center() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
