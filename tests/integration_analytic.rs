//! Integration tests linking the analytic model (§5) to the trace-driven
//! substrate: the homogeneous model's qualitative predictions should show up
//! in simulations over synthetic traces, and the two-class model should
//! order the pair types the same way the trace experiments do.

use psn::experiments::model::run_model_validation;
use psn::prelude::*;
use psn_analytic::{expected_first_path_time, mean_paths};
use psn_trace::generator::{generate_homogeneous, HomogeneousConfig};

#[test]
fn model_validation_agrees_across_implementations() {
    let validation = run_model_validation(10);
    for a in &validation.agreements {
        assert!(a.ode_relative_error() < 0.12, "ODE error {}", a.ode_relative_error());
        assert!(
            a.simulation_relative_error() < 0.6,
            "simulation error {}",
            a.simulation_relative_error()
        );
    }
}

#[test]
fn homogeneous_trace_first_delivery_times_scale_like_log_n_over_lambda() {
    // The paper's H = ln(N)/λ estimate for the expected first-path time.
    // Epidemic delivery times over a homogeneous synthetic trace should be
    // of that order of magnitude (within a small factor).
    let lambda = 0.02;
    let nodes = 40;
    let config = HomogeneousConfig {
        nodes,
        window_seconds: 3600.0,
        node_contact_rate: lambda,
        mean_contact_duration: 20.0,
        seed: 77,
    };
    let trace = generate_homogeneous(&config);
    let graph = SpaceTimeGraph::build_default(&trace);

    let generator = MessageGenerator::new(MessageWorkloadConfig {
        nodes,
        generation_horizon: 1800.0,
        mean_interarrival: 4.0,
        seed: 3,
    });
    let mut delays = Vec::new();
    for message in generator.uniform_messages(40) {
        if let Some(t) = epidemic_delivery_time(&graph, &message) {
            delays.push(t - message.created_at);
        }
    }
    assert!(delays.len() >= 20, "most messages should be deliverable");
    let mean_delay: f64 = delays.iter().sum::<f64>() / delays.len() as f64;
    let predicted = expected_first_path_time(nodes, lambda);
    assert!(
        mean_delay < predicted * 4.0 && mean_delay > predicted / 8.0,
        "mean epidemic delay {mean_delay:.0}s vs predicted order {predicted:.0}s"
    );
}

#[test]
fn heterogeneous_traces_have_longer_optimal_paths_than_homogeneous_ones() {
    // §5.2's key point: heterogeneity (low-rate sources/destinations)
    // lengthens optimal path durations relative to a homogeneous population
    // with a comparable contact budget.
    let window = 2400.0;
    let homogeneous = generate_homogeneous(&HomogeneousConfig {
        nodes: 30,
        window_seconds: window,
        node_contact_rate: 0.02,
        mean_contact_duration: 60.0,
        seed: 5,
    });
    let heterogeneous = {
        let mut ds = SyntheticDataset::quick_config(DatasetId::Infocom06Morning);
        ds.config.mobile_nodes = 26;
        ds.config.stationary_nodes = 4;
        ds.config.window_seconds = window;
        // Match the aggregate contact volume roughly: max rate well above the
        // homogeneous rate, many nodes far below it.
        ds.config.max_node_rate = 0.04;
        ds.generate()
    };

    let mean_optimal = |trace: &ContactTrace| {
        let graph = SpaceTimeGraph::build_default(trace);
        let generator = MessageGenerator::new(MessageWorkloadConfig {
            nodes: trace.node_count(),
            generation_horizon: window * 2.0 / 3.0,
            mean_interarrival: 4.0,
            seed: 13,
        });
        let mut durations = Vec::new();
        for message in generator.uniform_messages(30) {
            if let Some(t) = epidemic_delivery_time(&graph, &message) {
                durations.push(t - message.created_at);
            }
        }
        durations.iter().sum::<f64>() / durations.len().max(1) as f64
    };

    let hom = mean_optimal(&homogeneous);
    let het = mean_optimal(&heterogeneous);
    assert!(
        het > hom * 0.8,
        "heterogeneous optimal durations ({het:.0}s) should not collapse below homogeneous ones ({hom:.0}s)"
    );
}

#[test]
fn two_class_predictions_follow_the_papers_ordering() {
    let validation = run_model_validation(5);
    let find = |class: PairClass| {
        validation.two_class.iter().find(|p| p.class == class).expect("all classes predicted")
    };
    assert!(find(PairClass::OutIn).expected_t1 > find(PairClass::InIn).expected_t1);
    assert!(find(PairClass::InOut).expected_te > find(PairClass::InIn).expected_te);
    assert!(find(PairClass::OutOut).expected_t1 >= find(PairClass::OutIn).expected_t1 - 1e-9);
    assert!(find(PairClass::OutOut).expected_te >= find(PairClass::InOut).expected_te - 1e-9);
}

#[test]
fn closed_form_mean_is_consistent_with_growth_rate() {
    // Doubling time of the expected path count is ln(2)/λ.
    let lambda = 0.01;
    let mean0 = 1.0 / 98.0;
    let doubling = (2.0_f64).ln() / lambda;
    let ratio =
        mean_paths(mean0, lambda, 3.0 * doubling) / mean_paths(mean0, lambda, 2.0 * doubling);
    assert!((ratio - 2.0).abs() < 1e-9);
}
