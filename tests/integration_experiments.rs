//! Integration tests of the experiment drivers and report renderers: every
//! figure's data can be produced end-to-end at quick scale and the rendered
//! text contains the expected series.

use psn::experiments::activity::{activity_report, run_activity_study};
use psn::experiments::explosion::run_explosion_study_on;
use psn::experiments::forwarding::run_forwarding_study_on;
use psn::experiments::hop_rates::run_hop_rate_study;
use psn::experiments::paths_taken::run_paths_taken;
use psn::prelude::*;
use psn::report;

fn small_trace() -> ContactTrace {
    let mut ds = SyntheticDataset::quick_config(DatasetId::Infocom06Morning);
    ds.config.mobile_nodes = 20;
    ds.config.stationary_nodes = 5;
    ds.config.window_seconds = 1800.0;
    ds.generate()
}

fn uniform_messages(trace: &ContactTrace, count: usize) -> Vec<Message> {
    MessageGenerator::new(MessageWorkloadConfig {
        nodes: trace.node_count(),
        generation_horizon: trace.window().duration() * 2.0 / 3.0,
        mean_interarrival: 4.0,
        seed: 4242,
    })
    .uniform_messages(count)
}

#[test]
fn figure_1_and_7_activity_reports_render() {
    let reports = run_activity_study(ExperimentProfile::Quick);
    assert_eq!(reports.len(), 4);
    for r in &reports {
        let fig1 = report::render_activity(r);
        assert!(fig1.contains("Figure 1"));
        assert!(fig1.lines().count() > 10);
        let fig7 = report::render_contact_cdf(r);
        assert!(fig7.contains("Figure 7"));
        assert!(fig7.contains("value,probability"));
    }
}

#[test]
fn figures_4_5_6_8_explosion_study_renders() {
    let trace = small_trace();
    let messages = uniform_messages(&trace, 14);
    let study = run_explosion_study_on(
        DatasetId::Infocom06Morning,
        &trace,
        &messages,
        EnumerationConfig::quick(40),
        40,
        2,
    );
    assert_eq!(study.summary.len(), 14);

    let fig4 = report::render_explosion_cdfs(&study);
    assert!(fig4.contains("Figure 4"));
    let fig5 = report::render_explosion_scatter(&study);
    assert!(fig5.contains("Figure 5"));
    assert!(fig5.contains("optimal_duration_s,time_to_explosion_s"));
    let fig6 = report::render_explosion_growth(&study);
    assert!(fig6.contains("Figure 6"));
    let fig8 = report::render_pairtype_scatter(&study);
    assert!(fig8.contains("Figure 8"));
    for pair in ["in-in", "in-out", "out-in", "out-out"] {
        assert!(fig8.contains(pair), "missing panel {pair}");
    }
}

#[test]
fn figures_9_10_11_13_forwarding_study_renders() {
    let trace = small_trace();
    let workload = MessageWorkloadConfig {
        nodes: trace.node_count(),
        generation_horizon: 1200.0,
        mean_interarrival: 20.0,
        seed: 11,
    };
    let study = run_forwarding_study_on(DatasetId::Infocom06Morning, &trace, workload, 1, 0);

    let fig9 = report::render_delay_vs_success(&study);
    assert!(fig9.contains("Figure 9"));
    for kind in AlgorithmKind::all() {
        assert!(fig9.contains(kind.label()), "missing algorithm {kind}");
    }
    let fig10 = report::render_delay_distributions(&study);
    assert!(fig10.contains("Figure 10"));
    let fig11 = report::render_reception_times(&study);
    assert!(fig11.contains("Figure 11"));
    assert!(fig11.contains("cumulative_deliveries"));
    let fig13 = report::render_pairtype_performance(&study);
    assert!(fig13.contains("Figure 13"));
    assert!(fig13.contains("out-out"));
}

#[test]
fn figure_12_paths_taken_renders() {
    let trace = small_trace();
    let messages = uniform_messages(&trace, 2);
    let cases = run_paths_taken(&trace, &messages, EnumerationConfig::quick(30));
    assert_eq!(cases.len(), 2);
    for case in &cases {
        let fig12 = report::render_paths_taken(case);
        assert!(fig12.contains("Figure 12"));
        assert!(fig12.contains("algorithm,arrival_offset_s"));
        assert!(fig12.contains("Epidemic"));
    }
}

#[test]
fn figures_14_15_hop_rates_render() {
    let trace = small_trace();
    let messages = uniform_messages(&trace, 10);
    let study = run_explosion_study_on(
        DatasetId::Infocom06Morning,
        &trace,
        &messages,
        EnumerationConfig::quick(30),
        30,
        2,
    );
    let hop_study = run_hop_rate_study(&study.sample_paths, &study.rates);
    assert!(hop_study.paths > 0, "need sample paths for the hop analysis");

    let fig14 = report::render_hop_rates(&hop_study);
    assert!(fig14.contains("Figure 14"));
    assert!(fig14.contains("hop,mean_rate"));
    let fig15 = report::render_rate_ratios(&hop_study);
    assert!(fig15.contains("Figure 15"));
}

#[test]
fn activity_report_reflects_trace_identity() {
    let trace = small_trace();
    let report_struct = activity_report(DatasetId::Infocom06Morning, &trace);
    assert_eq!(report_struct.scenario, DatasetId::Infocom06Morning.label());
    assert!(report_struct.per_minute.total() > 0.0);
}
