//! Cross-crate integration tests for the forwarding pipeline: synthetic
//! trace → trace-driven simulator → six algorithms → metrics, reproducing
//! the qualitative claims of §6 of the paper at reduced scale.

use psn::prelude::*;
use psn_forwarding::PairTypeMetrics;

fn small_trace() -> ContactTrace {
    let mut ds = SyntheticDataset::quick_config(DatasetId::Infocom06Morning);
    ds.config.mobile_nodes = 24;
    ds.config.stationary_nodes = 6;
    ds.config.window_seconds = 2100.0;
    ds.generate()
}

fn workload(trace: &ContactTrace, seed: u64) -> Vec<Message> {
    let generator = MessageGenerator::new(MessageWorkloadConfig {
        nodes: trace.node_count(),
        generation_horizon: trace.window().duration() * 2.0 / 3.0,
        mean_interarrival: 15.0,
        seed,
    });
    generator.poisson_messages(0)
}

#[test]
fn epidemic_upper_bounds_every_algorithm() {
    let trace = small_trace();
    let simulator = Simulator::with_default_config(&trace);
    let messages = workload(&trace, 5);

    let mut success = Vec::new();
    for (kind, algorithm) in standard_algorithms() {
        let result = simulator.run(algorithm.as_ref(), &messages);
        let metrics = AlgorithmMetrics::from_result(&result);
        success.push((kind, metrics.success_rate));
    }
    let epidemic =
        success.iter().find(|(k, _)| *k == AlgorithmKind::Epidemic).expect("epidemic simulated").1;
    for (kind, rate) in &success {
        assert!(epidemic >= *rate - 1e-9, "epidemic ({epidemic}) should dominate {kind} ({rate})");
    }
    assert!(epidemic > 0.4, "epidemic success rate {epidemic} unexpectedly low");
}

#[test]
fn epidemic_matches_spacetime_optimal_delays_message_by_message() {
    let trace = small_trace();
    let simulator = Simulator::with_default_config(&trace);
    let messages = workload(&trace, 9);
    let result = simulator.run(&psn_forwarding::algorithms::Epidemic, &messages);
    for (outcome, message) in result.outcomes.iter().zip(&messages) {
        let optimal = epidemic_delivery_time(simulator.graph(), message);
        assert_eq!(outcome.delivered_at, optimal, "mismatch for {message}");
    }
}

#[test]
fn delivered_paths_are_loop_free_and_end_at_destination() {
    let trace = small_trace();
    let simulator = Simulator::with_default_config(&trace);
    let messages = workload(&trace, 11);
    for (_, algorithm) in standard_algorithms() {
        let result = simulator.run(algorithm.as_ref(), &messages);
        for outcome in &result.outcomes {
            if let Some(path) = &outcome.path {
                assert!(path.is_loop_free());
                assert_eq!(path.first().node, outcome.message.source);
                assert_eq!(path.current_node(), outcome.message.destination);
                assert_eq!(Some(path.end_time()), outcome.delivered_at);
            } else {
                assert!(!outcome.delivered());
            }
        }
    }
}

#[test]
fn destination_aware_history_algorithms_beat_never_forwarding() {
    // FRESH and Greedy must deliver at least as many messages as a strawman
    // that only ever delivers on direct source-destination contact.
    let trace = small_trace();
    let simulator = Simulator::with_default_config(&trace);
    let messages = workload(&trace, 13);

    struct NeverForward;
    impl psn_forwarding::ForwardingAlgorithm for NeverForward {
        fn name(&self) -> &str {
            "Never"
        }
        fn destination_aware(&self) -> bool {
            false
        }
        fn should_forward(
            &self,
            _ctx: &psn_forwarding::ForwardingContext<'_>,
            _holder: NodeId,
            _peer: NodeId,
            _destination: NodeId,
        ) -> bool {
            false
        }
    }

    let never = AlgorithmMetrics::from_result(&simulator.run(&NeverForward, &messages));
    for (kind, algorithm) in standard_algorithms() {
        let metrics = AlgorithmMetrics::from_result(&simulator.run(algorithm.as_ref(), &messages));
        assert!(
            metrics.success_rate >= never.success_rate - 1e-9,
            "{kind} ({}) should not do worse than never forwarding ({})",
            metrics.success_rate,
            never.success_rate
        );
    }
}

#[test]
fn pair_type_breakdown_shows_in_destinations_doing_best_under_epidemic() {
    let trace = small_trace();
    let simulator = Simulator::with_default_config(&trace);
    let rates = ContactRates::from_trace(&trace);
    let messages = workload(&trace, 17);
    let result = simulator.run(&psn_forwarding::algorithms::Epidemic, &messages);
    let breakdown = PairTypeMetrics::from_outcomes("Epidemic", &result.outcomes, &rates);

    let in_in = breakdown.get(PairType::InIn);
    let out_out = breakdown.get(PairType::OutOut);
    if in_in.messages >= 5 && out_out.messages >= 5 {
        assert!(
            in_in.success_rate >= out_out.success_rate - 0.05,
            "in-in ({}) should not be worse than out-out ({})",
            in_in.success_rate,
            out_out.success_rate
        );
    }
}

#[test]
fn success_rates_are_broadly_similar_across_practical_algorithms() {
    // The paper's headline for §6: very different algorithms perform
    // similarly. At our reduced scale we only check the spread is not
    // enormous (well under the full range of 1.0).
    let trace = small_trace();
    let simulator = Simulator::with_default_config(&trace);
    let messages = workload(&trace, 21);
    let mut rates = Vec::new();
    for (kind, algorithm) in standard_algorithms() {
        if kind == AlgorithmKind::Epidemic {
            continue;
        }
        let metrics = AlgorithmMetrics::from_result(&simulator.run(algorithm.as_ref(), &messages));
        rates.push(metrics.success_rate);
    }
    let max = rates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(
        max - min <= 0.6,
        "success-rate spread {} unexpectedly large (rates: {rates:?})",
        max - min
    );
}
