//! Differential tests pinning the streaming execution mode bit-identical
//! to the materialized reference engines.
//!
//! The streaming pipeline (bounded-window space-time graph + incremental
//! history timeline, built in one pass over the contact-event stream) is an
//! *execution mode*, not a model change: every study and every sweep must
//! render byte-for-byte the same report whether the graph was materialized
//! or windowed — including window sizes small enough to force spill
//! round-trips on every slot. That contract is what keeps
//! `streaming_window` out of the cache keys.
//!
//! The second half hardens the stream boundary itself: nonzero window
//! starts, contacts spanning window edges, empty-window slots, and
//! out-of-order event rejection, each checked against the materialized
//! graph of the same trace.

use proptest::prelude::*;
use psn::prelude::*;
use psn::report::JsonRenderer;
use psn::study::{run_study_with, ArtifactStore, StudyId, StudyParams, StudyScenario, StudySpec};
use psn::{run_sweep_with, SweepSpec};
use psn_spacetime::{GraphRef, StreamBuildError, WindowedSpaceTimeGraph};
use psn_trace::contact::Contact;
use psn_trace::generator::CommunityConfig;
use psn_trace::node::{NodeClass, NodeRegistry};
use psn_trace::stream::{ContactEvent, ContactStream, StreamError};
use psn_trace::trace::TimeWindow;
use psn_trace::{ScenarioConfig, ScenarioSweep, Seconds, SweepAxis, TraceEventStream};

/// Deliberately tiny parameters: structure, not scale, is under test.
fn tiny_params() -> StudyParams {
    let mut p = StudyParams::for_profile(ExperimentProfile::Quick);
    p.enumeration = EnumerationConfig::quick(25);
    p.explosion_threshold = 25;
    p.enumeration_messages = 6;
    p.simulation_runs = 1;
    p.workload_horizon = Some(600.0);
    p.workload_interarrival = 40.0;
    p.paths_taken_messages = 2;
    p.model_replications = 5;
    p.threads = 2;
    p
}

fn scenario() -> StudyScenario {
    StudyScenario::from(ScenarioConfig::Community(CommunityConfig {
        name: "streaming-differential".into(),
        communities: 2,
        nodes_per_community: 8,
        window_seconds: 2400.0,
        max_node_rate: 0.2,
        intra_inter_ratio: 4.0,
        mean_contact_duration: 40.0,
        contact_duration_cv: 0.5,
        seed: 11,
    }))
}

/// Runs `study` with `params` against a fresh in-memory store and returns
/// the canonical JSON rendering plus the store's recorded streaming peak.
fn render_study(study: StudyId, params: StudyParams) -> (String, usize) {
    let scenarios = if study == StudyId::Model { vec![] } else { vec![scenario()] };
    let plan = StudySpec::new(study, scenarios, params).plan().expect("plan is valid");
    let store = ArtifactStore::in_memory();
    let report = run_study_with(&plan, &store).expect("study executes");
    (JsonRenderer.render_json(&report.doc), store.stats().peak_stream_bytes)
}

#[test]
fn all_six_studies_are_bit_identical_between_engines() {
    for study in StudyId::all() {
        let (reference, reference_peak) = render_study(study, tiny_params());
        assert_eq!(reference_peak, 0, "materialized runs record no streaming peak");
        // Window 1 forces a spill reload for effectively every slot query;
        // window 7 exercises the mixed hot/cold path.
        for window in [1usize, 7] {
            let (streamed, peak) =
                render_study(study, tiny_params().with_streaming_window(Some(window)));
            assert_eq!(
                reference,
                streamed,
                "study {} must render byte-identically under --streaming --window {window}",
                study.name()
            );
            if study != StudyId::Model && study != StudyId::Activity {
                assert!(peak > 0, "graph-using study {} records its working set", study.name());
            }
        }
    }
}

#[test]
fn sweep_with_delta_and_interarrival_axes_is_bit_identical_between_engines() {
    // The sweep crosses the two new `params.*` axes: Δ (result-relevant —
    // it re-quantizes every contact) and the workload inter-arrival time.
    let sweep = ScenarioSweep {
        name: "streaming-sweep".into(),
        study: Some("forwarding".into()),
        base: scenario().config,
        axes: vec![
            SweepAxis { field: "params.delta".into(), values: vec![10.0, 20.0] },
            SweepAxis { field: "params.interarrival".into(), values: vec![40.0, 80.0] },
        ],
        seeds: vec![],
    };
    let render = |params: StudyParams| {
        let spec =
            SweepSpec { study: StudyId::Forwarding, sweep: sweep.clone(), views: vec![], params };
        let plan = spec.plan().expect("sweep plan is valid");
        assert_eq!(plan.cells.len(), 4, "2x2 parameter grid");
        let store = ArtifactStore::in_memory();
        let report = run_sweep_with(&plan, &store).expect("sweep executes");
        JsonRenderer.render_json(&report.doc)
    };
    let reference = render(tiny_params());
    let streamed = render(tiny_params().with_streaming_window(Some(3)));
    assert_eq!(reference, streamed, "sweep renders byte-identically under streaming");
}

/// A short trace whose window starts far from t = 0 and whose contacts
/// cross slot boundaries, end exactly on them, and overrun the window end
/// (clamped to the final slot) — the boundary cases a slotted stream can
/// get wrong.
fn boundary_trace(start: Seconds) -> ContactTrace {
    let mut reg = NodeRegistry::new();
    for _ in 0..6 {
        reg.add(NodeClass::Mobile);
    }
    let contacts = vec![
        // Spans the very first slot edge.
        Contact::new(NodeId(0), NodeId(1), start + 5.0, start + 15.0).unwrap(),
        // Ends exactly on a slot boundary.
        Contact::new(NodeId(1), NodeId(2), start + 20.0, start + 30.0).unwrap(),
        // Long contact spanning many slots (and an empty gap on both sides).
        Contact::new(NodeId(3), NodeId(4), start + 55.0, start + 95.0).unwrap(),
        // Overruns the window end: covered slots clamp to the last slot.
        Contact::new(NodeId(0), NodeId(5), start + 110.0, start + 500.0).unwrap(),
    ];
    ContactTrace::from_contacts(
        "stream-boundary",
        reg,
        TimeWindow::new(start, start + 120.0),
        contacts,
    )
    .unwrap()
}

/// Asserts the windowed graph matches the materialized one slot by slot —
/// edges, active nodes and component structure — querying in *reverse*
/// order so small windows exercise the spill-reload path.
fn assert_windowed_matches(trace: &ContactTrace, delta: Seconds, window: usize) {
    let reference = SpaceTimeGraph::build(trace, delta);
    let windowed = WindowedSpaceTimeGraph::stream(
        &mut TraceEventStream::new(trace, delta),
        window,
        Box::new(psn_artifact::CodecSlotSpill::in_temp_dir().unwrap()),
    )
    .unwrap();
    assert_eq!(windowed.slot_count(), reference.slot_count());
    let view = GraphRef::from(&windowed);
    for s in (0..reference.slot_count()).rev() {
        let slot = view.slot(s);
        assert_eq!(slot.edges(), reference.edges(s), "slot {s} edges");
        assert_eq!(slot.active_nodes(), reference.active_nodes(s), "slot {s} active nodes");
        for node in 0..trace.node_count() as u32 {
            assert_eq!(
                slot.component(NodeId(node)),
                reference.component(s, NodeId(node)),
                "slot {s} component of n{node}"
            );
        }
        assert!(
            (view.slot_end_time(s) - reference.slot_end_time(s)).abs() < 1e-12,
            "slot {s} end time"
        );
    }
}

#[test]
fn nonzero_window_start_and_edge_spanning_contacts_stream_identically() {
    for start in [0.0, 36000.0] {
        for window in [1usize, 2, 64] {
            assert_windowed_matches(&boundary_trace(start), 10.0, window);
        }
    }
}

#[test]
fn empty_window_slots_match_the_materialized_graph() {
    // One contact in the middle of a long window: every other slot is
    // empty, and empty slots assign each node its own singleton component.
    let mut reg = NodeRegistry::new();
    for _ in 0..4 {
        reg.add(NodeClass::Mobile);
    }
    let contacts = vec![Contact::new(NodeId(1), NodeId(2), 500.0, 520.0).unwrap()];
    let trace =
        ContactTrace::from_contacts("mostly-empty", reg, TimeWindow::new(0.0, 1000.0), contacts)
            .unwrap();
    assert_windowed_matches(&trace, 10.0, 1);
    let windowed = WindowedSpaceTimeGraph::stream(
        &mut TraceEventStream::new(&trace, 10.0),
        1,
        Box::new(psn_artifact::CodecSlotSpill::in_temp_dir().unwrap()),
    )
    .unwrap();
    // 100 slots, three busy (the contact [500, 520] covers slots 50..=52):
    // the hot set never held more than one slot.
    assert_eq!(windowed.slot_count(), 100);
    for s in 0..windowed.slot_count() {
        let slot = windowed.slot(s);
        assert_eq!(slot.is_empty(), !(50..=52).contains(&s), "busy slots are exactly 50..=52");
    }
}

/// An event source that violates the slot-ordering contract on purpose.
struct OutOfOrderStream {
    emitted: usize,
}

impl ContactStream for OutOfOrderStream {
    fn node_count(&self) -> usize {
        4
    }

    fn window(&self) -> TimeWindow {
        TimeWindow::new(0.0, 100.0)
    }

    fn delta(&self) -> Seconds {
        10.0
    }

    fn next_event(&mut self) -> Result<Option<ContactEvent>, StreamError> {
        self.emitted += 1;
        match self.emitted {
            1 => Ok(Some(ContactEvent::Up {
                slot: 5,
                last_slot: 5,
                a: NodeId(0),
                b: NodeId(1),
                start: 50.0,
                end: 55.0,
            })),
            // Slot 3 after slot 5: a consumer that already sealed past 3
            // must reject this instead of silently misfiling the edge.
            2 => Ok(Some(ContactEvent::Up {
                slot: 3,
                last_slot: 3,
                a: NodeId(2),
                b: NodeId(3),
                start: 30.0,
                end: 35.0,
            })),
            _ => Ok(None),
        }
    }
}

#[test]
fn out_of_order_events_are_rejected_not_misfiled() {
    let result = WindowedSpaceTimeGraph::stream(
        &mut OutOfOrderStream { emitted: 0 },
        4,
        Box::new(psn_artifact::CodecSlotSpill::in_temp_dir().unwrap()),
    );
    assert!(
        matches!(
            result,
            Err(StreamBuildError::Stream(StreamError::SlotRegression { slot: 3, .. }))
        ),
        "got {result:?}"
    );
}

proptest! {
    /// Any community trace streams into a windowed graph identical to the
    /// materialized reference, for any window size — the engine-pair
    /// property the whole streaming mode rests on.
    #[test]
    fn any_trace_any_window_matches_materialized(seed in 0u64..40, window in 1usize..6) {
        let config = ScenarioConfig::Community(CommunityConfig {
            name: format!("stream-prop-{seed}"),
            communities: 2,
            nodes_per_community: 5,
            window_seconds: 600.0,
            max_node_rate: 0.15,
            intra_inter_ratio: 3.0,
            mean_contact_duration: 30.0,
            contact_duration_cv: 0.5,
            seed,
        });
        assert_windowed_matches(&config.generate(), 10.0, window);
    }
}
