//! Cross-crate integration tests for the path-enumeration pipeline:
//! synthetic trace generation → space-time graph → k-shortest valid-path
//! enumeration → explosion profiles.

use psn::prelude::*;
use psn_spacetime::validity::is_valid_path;

/// A reduced conference trace shared by the tests in this file.
fn small_trace() -> ContactTrace {
    let mut ds = SyntheticDataset::quick_config(DatasetId::Infocom06Morning);
    ds.config.mobile_nodes = 22;
    ds.config.stationary_nodes = 6;
    ds.config.window_seconds = 1800.0;
    ds.generate()
}

fn messages(trace: &ContactTrace, count: usize) -> Vec<Message> {
    let generator = MessageGenerator::new(MessageWorkloadConfig {
        nodes: trace.node_count(),
        generation_horizon: trace.window().duration() * 2.0 / 3.0,
        mean_interarrival: 4.0,
        seed: 99,
    });
    generator.uniform_messages(count)
}

#[test]
fn enumerated_first_paths_match_epidemic_optimum() {
    let trace = small_trace();
    let graph = SpaceTimeGraph::build_default(&trace);
    let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(40));
    for message in messages(&trace, 12) {
        let enumerated = enumerator.enumerate(&message).first_delivery_time();
        let optimal = epidemic_delivery_time(&graph, &message);
        assert_eq!(enumerated, optimal, "first delivery mismatch for {message}");
    }
}

#[test]
fn every_sampled_path_is_valid_and_properly_terminated() {
    let trace = small_trace();
    let graph = SpaceTimeGraph::build_default(&trace);
    let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(40));
    let mut checked = 0usize;
    for message in messages(&trace, 8) {
        let result = enumerator.enumerate(&message);
        for path in &result.sample_paths {
            assert_eq!(path.first().node, message.source);
            assert_eq!(path.current_node(), message.destination);
            assert!(path.first().time >= message.created_at);
            assert_eq!(is_valid_path(&graph, path, message.destination), Ok(()));
            checked += 1;
        }
        // Delivery times are sorted.
        for w in result.deliveries.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }
    assert!(checked > 0, "expected at least one delivered path to check");
}

#[test]
fn explosion_profiles_show_te_smaller_than_t1_on_average() {
    let trace = small_trace();
    let graph = SpaceTimeGraph::build_default(&trace);
    let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(60));
    let mut summary = ExplosionSummary::new();
    for message in messages(&trace, 20) {
        let result = enumerator.enumerate(&message);
        summary.push(ExplosionProfile::with_threshold(&result, 60));
    }
    assert!(summary.delivery_fraction() > 0.5, "most messages should be deliverable");
    let scatter = summary.scatter_points();
    if scatter.len() >= 5 {
        let mean_t1: f64 = scatter.iter().map(|p| p.0).sum::<f64>() / scatter.len() as f64;
        let mean_te: f64 = scatter.iter().map(|p| p.1).sum::<f64>() / scatter.len() as f64;
        assert!(
            mean_te <= mean_t1 + 60.0,
            "mean TE {mean_te} should not exceed mean T1 {mean_t1} by more than a slot"
        );
    }
}

#[test]
fn growth_curves_are_monotone_and_reach_total() {
    let trace = small_trace();
    let graph = SpaceTimeGraph::build_default(&trace);
    let enumerator = PathEnumerator::new(&graph, EnumerationConfig::quick(50));
    for message in messages(&trace, 6) {
        let result = enumerator.enumerate(&message);
        let profile = ExplosionProfile::with_threshold(&result, 50);
        let curve = profile.growth_curve();
        for w in curve.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        if let Some(last) = curve.last() {
            assert_eq!(last.1, profile.total_paths);
        }
    }
}

#[test]
fn denser_contact_traces_deliver_more_messages() {
    // Sanity check of the substrate: doubling the contact rate should not
    // reduce the fraction of deliverable messages.
    let sparse = {
        let mut ds = SyntheticDataset::quick_config(DatasetId::Conext06Morning);
        ds.config.mobile_nodes = 20;
        ds.config.stationary_nodes = 4;
        ds.config.window_seconds = 1500.0;
        ds.config.max_node_rate = 0.008;
        ds.generate()
    };
    let dense = {
        let mut ds = SyntheticDataset::quick_config(DatasetId::Conext06Morning);
        ds.config.mobile_nodes = 20;
        ds.config.stationary_nodes = 4;
        ds.config.window_seconds = 1500.0;
        ds.config.max_node_rate = 0.05;
        ds.generate()
    };
    let fraction_delivered = |trace: &ContactTrace| {
        let graph = SpaceTimeGraph::build_default(trace);
        let msgs = messages(trace, 15);
        let delivered = msgs.iter().filter(|m| epidemic_delivery_time(&graph, m).is_some()).count();
        delivered as f64 / msgs.len() as f64
    };
    assert!(fraction_delivered(&dense) >= fraction_delivered(&sparse));
}
